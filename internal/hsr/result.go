package hsr

import (
	"fmt"
	"math"
	"sort"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/metrics"
	"terrainhsr/internal/order"
	"terrainhsr/internal/pct"
	"terrainhsr/internal/pram"
	"terrainhsr/internal/terrain"
)

// VisiblePiece is one maximal visible portion of a terrain edge in the
// image plane. For edges projecting vertically, X1 == X2 and [Z1, Z2] is
// the visible height range.
type VisiblePiece struct {
	Edge int32
	Span envelope.Span
}

// Result is the outcome of a hidden-surface-removal run.
type Result struct {
	// N is the number of input edges (the paper's n).
	N int
	// Pieces lists the visible portions, sorted by (Edge, Span.X1, Span.Z1).
	Pieces []VisiblePiece
	// Crossings counts the crossings between edges and prefix profiles
	// discovered during the run; each is a vertex of the displayed image.
	Crossings int64
	// IntersectionsI is the count of all pairwise image-plane crossings,
	// populated only by the AllPairs baseline (the quantity I that
	// intersection-sensitive algorithms pay for).
	IntersectionsI int64
	// Counters are the charged elementary operations.
	Counters metrics.Counters
	// Acct is the PRAM phase accounting (nil for algorithms that bypass it).
	Acct *pram.Accounting
	// Order is the depth order used.
	Order *order.Result
	// Phase1 and Phase2 hold per-layer statistics when the algorithm runs
	// through the PCT.
	Phase1 []pct.Phase1Stats
	Phase2 []pct.Phase2Stats
}

// K returns the output-size measure: the number of visible pieces. The
// displayed image has Theta(K) vertices and edges (each piece is an edge of
// the image graph; vertices are piece endpoints, at most 2K).
func (r *Result) K() int { return len(r.Pieces) }

// Work returns the total charged operations (the paper's work measure).
func (r *Result) Work() int64 { return r.Counters.Total() }

// VisibleLength is the summed image-plane length of all visible pieces —
// a robust scalar for cross-algorithm comparisons.
func (r *Result) VisibleLength() float64 {
	sum := 0.0
	for _, p := range r.Pieces {
		dx := p.Span.X2 - p.Span.X1
		dz := p.Span.Z2 - p.Span.Z1
		sum += math.Hypot(dx, dz)
	}
	return sum
}

// sortPieces normalizes piece order for deterministic output and comparison.
func sortPieces(ps []VisiblePiece) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		if a.Span.X1 != b.Span.X1 {
			return a.Span.X1 < b.Span.X1
		}
		return a.Span.Z1 < b.Span.Z1
	})
}

// Prepared bundles the view-dependent preprocessing shared by all
// algorithms: the depth order (the separator-tree step) and the ordered
// image segments. A Prepared value is immutable and safe for concurrent
// reuse across solves.
type Prepared struct {
	t    *terrain.Terrain
	ord  *order.Result
	segs []geom.Seg2
}

// Prepare computes the depth order for a terrain once, for repeated solves.
func Prepare(t *terrain.Terrain) (*Prepared, error) {
	if t == nil || t.NumEdges() == 0 {
		return nil, fmt.Errorf("hsr: empty terrain")
	}
	ord, err := order.Compute(t)
	if err != nil {
		return nil, err
	}
	segs := make([]geom.Seg2, len(ord.EdgeOrder))
	for i, e := range ord.EdgeOrder {
		segs[i] = t.EdgeImageSeg(int(e))
	}
	return &Prepared{t: t, ord: ord, segs: segs}, nil
}

// Order exposes the cached depth order.
func (p *Prepared) Order() *order.Result { return p.ord }

// Terrain exposes the terrain the preparation was computed for, so callers
// dispatching over a Prepared can also reach the order-free baselines
// (BruteForce, AllPairs).
func (p *Prepared) Terrain() *terrain.Terrain { return p.t }

// clipOne computes the visible spans of segment s against profile p,
// handling vertical-image segments, and reports the crossing count.
func clipOne(s geom.Seg2, p envelope.Profile) ([]envelope.Span, int, int) {
	s = s.Canon()
	if s.IsVerticalImage() {
		x := s.A.X
		zLo, zHi := s.A.Z, s.B.Z
		z, covered := p.Eval(x)
		switch {
		case !covered:
			return []envelope.Span{{X1: x, Z1: zLo, X2: x, Z2: zHi}}, 0, 1
		case zHi > z+geom.Eps:
			cross := 0
			if zLo < z {
				cross = 1
			}
			return []envelope.Span{{X1: x, Z1: geom.Max(zLo, z), X2: x, Z2: zHi}}, cross, 1
		default:
			return nil, 0, 1
		}
	}
	res := envelope.ClipAbove(s, p)
	return res.Spans, res.Crossings, res.Steps
}
