package hsr

import (
	"fmt"
	"math"
	"sort"
)

// interval is a normalized 1-D extent used for comparing results: the X
// extent for ordinary pieces, the Z extent for vertical-image pieces.
type interval struct{ lo, hi float64 }

// edgeIntervals normalizes a result's pieces for one edge into maximal
// intervals, merging pieces that abut within tol (different algorithms may
// split the same visible run at different internal points).
func edgeIntervals(pieces []VisiblePiece, tol float64) map[int32][]interval {
	m := make(map[int32][]interval)
	for _, p := range pieces {
		var iv interval
		if p.Span.X2-p.Span.X1 <= tol { // vertical piece: compare z-extents
			iv = interval{lo: p.Span.Z1, hi: p.Span.Z2}
		} else {
			iv = interval{lo: p.Span.X1, hi: p.Span.X2}
		}
		m[p.Edge] = append(m[p.Edge], iv)
	}
	for e, ivs := range m {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		merged := ivs[:0]
		for _, iv := range ivs {
			if n := len(merged); n > 0 && iv.lo <= merged[n-1].hi+tol {
				if iv.hi > merged[n-1].hi {
					merged[n-1].hi = iv.hi
				}
				continue
			}
			merged = append(merged, iv)
		}
		m[e] = merged
	}
	return m
}

// Equivalent checks that two results describe the same visible scene up to
// tolerance: for every edge, the same set of maximal visible intervals.
// Intervals shorter than minLen are ignored on both sides (algorithms may
// legitimately disagree about slivers within numeric tolerance of a
// crossing).
func Equivalent(a, b *Result, tol, minLen float64) error {
	ai := edgeIntervals(a.Pieces, tol)
	bi := edgeIntervals(b.Pieces, tol)
	edges := make(map[int32]bool)
	for e := range ai {
		edges[e] = true
	}
	for e := range bi {
		edges[e] = true
	}
	var keys []int32
	for e := range edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, e := range keys {
		av := filterShort(ai[e], minLen)
		bv := filterShort(bi[e], minLen)
		if len(av) != len(bv) {
			return fmt.Errorf("hsr: edge %d: %d vs %d visible intervals (%v vs %v)", e, len(av), len(bv), av, bv)
		}
		for i := range av {
			if math.Abs(av[i].lo-bv[i].lo) > 20*tol+minLen || math.Abs(av[i].hi-bv[i].hi) > 20*tol+minLen {
				return fmt.Errorf("hsr: edge %d interval %d differs: [%v,%v] vs [%v,%v]",
					e, i, av[i].lo, av[i].hi, bv[i].lo, bv[i].hi)
			}
		}
	}
	return nil
}

func filterShort(ivs []interval, minLen float64) []interval {
	out := ivs[:0:0]
	for _, iv := range ivs {
		if iv.hi-iv.lo > minLen {
			out = append(out, iv)
		}
	}
	return out
}

// SimilarLength is a weaker comparison: total visible length within a
// relative tolerance. Used as a fast smoke check on large inputs where the
// exact interval comparison would dominate test time.
func SimilarLength(a, b *Result, relTol float64) error {
	la, lb := a.VisibleLength(), b.VisibleLength()
	scale := math.Max(math.Abs(la), math.Abs(lb))
	if scale == 0 {
		return nil
	}
	if math.Abs(la-lb) > relTol*scale {
		return fmt.Errorf("hsr: visible length differs: %v vs %v (rel %v)", la, lb, math.Abs(la-lb)/scale)
	}
	return nil
}
