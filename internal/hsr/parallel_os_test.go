package hsr

import (
	"testing"

	"terrainhsr/internal/workload"
)

func TestParallelOSMatchesSequentialAllKinds(t *testing.T) {
	for _, kind := range workload.Kinds {
		for _, hulls := range []bool{false, true} {
			for seed := int64(0); seed < 2; seed++ {
				tr := genT(t, kind, 7, 6, seed)
				seq, err := Sequential(tr)
				if err != nil {
					t.Fatalf("%s/%d: %v", kind, seed, err)
				}
				os, err := ParallelOS(tr, OSOptions{Workers: 4, WithHulls: hulls})
				if err != nil {
					t.Fatalf("%s/%d: %v", kind, seed, err)
				}
				if err := Equivalent(seq, os, 1e-7, 1e-5); err != nil {
					t.Fatalf("%s/%d hulls=%v: %v", kind, seed, hulls, err)
				}
			}
		}
	}
}

func TestParallelOSLargerFractal(t *testing.T) {
	tr := genT(t, workload.Fractal, 16, 16, 21)
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, hulls := range []bool{false, true} {
		os, err := ParallelOS(tr, OSOptions{Workers: 8, WithHulls: hulls})
		if err != nil {
			t.Fatal(err)
		}
		if err := Equivalent(seq, os, 1e-7, 1e-5); err != nil {
			t.Fatalf("hulls=%v: %v", hulls, err)
		}
	}
}

func TestParallelOSWorkerCountsAgree(t *testing.T) {
	tr := genT(t, workload.Rough, 10, 10, 3)
	var results []*Result
	for _, w := range []int{1, 2, 8} {
		r, err := ParallelOS(tr, OSOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if err := Equivalent(results[0], results[i], 1e-9, 1e-7); err != nil {
			t.Fatalf("worker counts disagree: %v", err)
		}
	}
}

func TestParallelOSOutputSensitiveWork(t *testing.T) {
	// On a heavily occluded scene the output-sensitive algorithm must do
	// far less merge work than the copying parallelization.
	occluded, err := workload.Generate(workload.Params{
		Kind: workload.Ridge, Rows: 24, Cols: 24, Seed: 5, RidgeHeight: 500, Amplitude: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	os, err := ParallelOS(occluded, OSOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	simple, err := ParallelSimple(occluded, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(os, simple, 1e-7, 1e-5); err != nil {
		t.Fatal(err)
	}
	// Phase-2 allocation (new persistent nodes) must be far below the
	// pieces the copying variant materializes.
	var osAlloc, simpleAlloc int64
	for _, st := range os.Phase2 {
		osAlloc += st.PrefixPiecesAllocated
	}
	for _, st := range simple.Phase2 {
		simpleAlloc += st.PrefixPiecesAllocated
	}
	if osAlloc == 0 || simpleAlloc == 0 {
		t.Fatalf("missing allocation stats: %d %d", osAlloc, simpleAlloc)
	}
	if osAlloc*2 > simpleAlloc {
		t.Fatalf("persistence advantage missing: OS allocated %d vs simple %d", osAlloc, simpleAlloc)
	}
}

func TestParallelOSCrossingsMatchSequential(t *testing.T) {
	// Both algorithms discover the same visible scene; their crossing
	// totals (image vertex events) should agree to within the events
	// attributable to span endpoints.
	tr := genT(t, workload.Fractal, 10, 10, 8)
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	os, err := ParallelOS(tr, OSOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.K() != os.K() {
		t.Fatalf("piece counts differ: %d vs %d", seq.K(), os.K())
	}
}

func TestParallelOSEmptyTerrain(t *testing.T) {
	if _, err := ParallelOS(nil, OSOptions{}); err == nil {
		t.Fatal("nil terrain should error")
	}
}

func TestParallelOSAccountingSane(t *testing.T) {
	tr := genT(t, workload.Sinusoid, 12, 12, 2)
	os, err := ParallelOS(tr, OSOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if os.Acct.NumPhases() == 0 {
		t.Fatal("no PRAM phases")
	}
	if os.Acct.Depth() >= os.Acct.Work() {
		t.Fatalf("depth %d not below work %d", os.Acct.Depth(), os.Acct.Work())
	}
	if os.Counters.TreeAllocs == 0 {
		t.Fatal("no persistent allocations recorded")
	}
	// Brent time at p=1 must be at least the work; more processors never
	// hurt.
	if os.Acct.TimeOn(1) < float64(os.Acct.Work()) {
		t.Fatal("TimeOn(1) below work")
	}
	if os.Acct.TimeOn(16) > os.Acct.TimeOn(1) {
		t.Fatal("more processors slowed the PRAM down")
	}
}
