package hsr

import (
	"math/rand"
	"testing"

	"terrainhsr/internal/workload"
)

func sampleColumns(r *rand.Rand, tr interface{ NumEdges() int }, cols int, n int) []float64 {
	ys := make([]float64, n)
	for i := range ys {
		// Stay inside the sheared domain and away from integer grid lines.
		ys[i] = 0.3 + r.Float64()*(float64(cols)-0.6)
	}
	return ys
}

// Every solver must agree with the first-principles ray oracle.
func TestOracleAllSolvers(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, kind := range workload.Kinds {
		tr, err := workload.Generate(workload.Params{Kind: kind, Rows: 9, Cols: 9, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		ys := sampleColumns(r, tr, 9, 80)
		solvers := map[string]func() (*Result, error){
			"sequential": func() (*Result, error) { return Sequential(tr) },
			"bruteforce": func() (*Result, error) { return BruteForce(tr) },
			"simple":     func() (*Result, error) { return ParallelSimple(tr, 4) },
			"os":         func() (*Result, error) { return ParallelOS(tr, OSOptions{Workers: 4}) },
			"os-hulls":   func() (*Result, error) { return ParallelOS(tr, OSOptions{Workers: 4, WithHulls: true}) },
		}
		for name, run := range solvers {
			res, err := run()
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, name, err)
			}
			if err := OracleCheck(tr, res, ys, 1e-6); err != nil {
				t.Fatalf("%s/%s: %v", kind, name, err)
			}
		}
	}
}

// The oracle itself must catch a corrupted result.
func TestOracleDetectsCorruption(t *testing.T) {
	tr, err := workload.Generate(workload.Params{Kind: workload.Fractal, Rows: 8, Cols: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pieces) < 4 {
		t.Fatal("need pieces to corrupt")
	}
	// Drop half the pieces: some visible edge must now be missing.
	res.Pieces = res.Pieces[:len(res.Pieces)/2]
	r := rand.New(rand.NewSource(5))
	ys := sampleColumns(r, tr, 8, 200)
	if err := OracleCheck(tr, res, ys, 1e-6); err == nil {
		t.Fatal("oracle failed to detect dropped pieces")
	}
}

// Larger randomized oracle sweep on the flagship solver.
func TestOracleParallelOSRandomTerrains(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		rows, cols := 6+r.Intn(10), 6+r.Intn(10)
		kind := workload.Kinds[trial%len(workload.Kinds)]
		tr, err := workload.Generate(workload.Params{
			Kind: kind, Rows: rows, Cols: cols, Seed: int64(trial) * 131,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelOS(tr, OSOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		ys := sampleColumns(r, tr, cols, 120)
		if err := OracleCheck(tr, res, ys, 1e-6); err != nil {
			t.Fatalf("trial %d (%s %dx%d): %v", trial, kind, rows, cols, err)
		}
	}
}
