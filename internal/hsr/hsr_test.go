package hsr

import (
	"math"
	"testing"

	"terrainhsr/internal/terrain"
	"terrainhsr/internal/workload"
)

func genT(t *testing.T, kind workload.Kind, rows, cols int, seed int64) *terrain.Terrain {
	t.Helper()
	tr, err := workload.Generate(workload.Params{Kind: kind, Rows: rows, Cols: cols, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSequentialBasics(t *testing.T) {
	tr := genT(t, workload.Sinusoid, 6, 6, 1)
	res, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() == 0 {
		t.Fatal("no visible pieces on an open terrain")
	}
	if res.N != tr.NumEdges() {
		t.Fatalf("N=%d want %d", res.N, tr.NumEdges())
	}
	// The front-most edges are unoccluded; at least one must be fully visible.
	if res.VisibleLength() <= 0 {
		t.Fatal("zero visible length")
	}
	if res.Acct.NumPhases() == 0 {
		t.Fatal("no PRAM phases recorded")
	}
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Fractal, workload.Sinusoid, workload.Ridge, workload.TiltedUp, workload.TiltedDown, workload.Rough, workload.Steps} {
		for seed := int64(0); seed < 3; seed++ {
			tr := genT(t, kind, 5, 5, seed)
			seq, err := Sequential(tr)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, seed, err)
			}
			bf, err := BruteForce(tr)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, seed, err)
			}
			if err := Equivalent(seq, bf, 1e-7, 1e-5); err != nil {
				t.Fatalf("%s/%d: %v", kind, seed, err)
			}
		}
	}
}

func TestParallelSimpleMatchesSequential(t *testing.T) {
	for _, kind := range workload.Kinds {
		for _, workers := range []int{1, 4} {
			tr := genT(t, kind, 7, 6, 42)
			seq, err := Sequential(tr)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			par, err := ParallelSimple(tr, workers)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if err := Equivalent(seq, par, 1e-7, 1e-5); err != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, err)
			}
		}
	}
}

func TestParallelSimpleLargerTerrainAgainstSequential(t *testing.T) {
	tr := genT(t, workload.Fractal, 16, 16, 7)
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelSimple(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(seq, par, 1e-7, 1e-5); err != nil {
		t.Fatal(err)
	}
	if par.Acct.Depth() >= par.Acct.Work() {
		t.Fatalf("depth %d not below work %d", par.Acct.Depth(), par.Acct.Work())
	}
}

func TestRidgeOcclusionShrinksOutput(t *testing.T) {
	open, err := workload.Generate(workload.Params{Kind: workload.Ridge, Rows: 10, Cols: 10, Seed: 3, RidgeHeight: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	wall, err := workload.Generate(workload.Params{Kind: workload.Ridge, Rows: 10, Cols: 10, Seed: 3, RidgeHeight: 100})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Sequential(open)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Sequential(wall)
	if err != nil {
		t.Fatal(err)
	}
	if !(rw.K() < ro.K()/2) {
		t.Fatalf("tall ridge should slash visible pieces: %d vs %d", rw.K(), ro.K())
	}
}

func TestTiltedUpMostlyVisible(t *testing.T) {
	tr := genT(t, workload.TiltedUp, 8, 8, 5)
	res, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	// A terrain rising away from the viewer shows nearly every edge.
	if res.K() < tr.NumEdges()/2 {
		t.Fatalf("expected most of %d edges visible, got %d pieces", tr.NumEdges(), res.K())
	}
}

func TestAllPairsCountsIntersections(t *testing.T) {
	tr := genT(t, workload.Rough, 6, 6, 9)
	ap, err := AllPairs(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ap.IntersectionsI <= 0 {
		t.Fatal("rough terrain should have image-plane crossings")
	}
	want := int64(workload.CountImageCrossings(tr))
	if ap.IntersectionsI != want {
		t.Fatalf("I=%d want %d", ap.IntersectionsI, want)
	}
	// Same visibility as Sequential.
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(seq, ap, 1e-7, 1e-5); err != nil {
		t.Fatal(err)
	}
	// But strictly more charged work.
	if ap.Work() <= seq.Work() {
		t.Fatalf("AllPairs work %d should exceed Sequential %d", ap.Work(), seq.Work())
	}
}

func TestEmptyTerrainRejected(t *testing.T) {
	if _, err := Sequential(nil); err == nil {
		t.Fatal("nil terrain should error")
	}
	if _, err := ParallelSimple(nil, 2); err == nil {
		t.Fatal("nil terrain should error")
	}
	if _, err := BruteForce(nil); err == nil {
		t.Fatal("nil terrain should error")
	}
}

func TestVerticalEdgesAccounted(t *testing.T) {
	// A single-row flat grid has edges running along x that project to
	// points/vertical segments; the front ones must be visible.
	tr, err := terrain.Grid{Rows: 1, Cols: 3, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return 1 }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	vertical := 0
	for _, p := range res.Pieces {
		if p.Span.X2 == p.Span.X1 {
			vertical++
		}
	}
	// The along-x edges all project to single points of zero height range
	// here (flat terrain), so none appear; make the terrain non-flat.
	tr2, err := terrain.Grid{Rows: 1, Cols: 3, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return float64(i * 2) }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Sequential(tr2)
	if err != nil {
		t.Fatal(err)
	}
	vertical2 := 0
	for _, p := range res2.Pieces {
		if p.Span.X2 == p.Span.X1 {
			vertical2++
		}
	}
	if vertical2 == 0 {
		t.Fatal("rising terrain must show vertical (along-view) edges")
	}
	_ = vertical
}

func TestEquivalentDetectsDifference(t *testing.T) {
	tr := genT(t, workload.Fractal, 5, 5, 1)
	a, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with b.
	if len(b.Pieces) == 0 {
		t.Fatal("need pieces")
	}
	b.Pieces = b.Pieces[:len(b.Pieces)-1]
	if err := Equivalent(a, b, 1e-7, 1e-5); err == nil {
		t.Fatal("Equivalent failed to detect missing piece")
	}
}

func TestSimilarLength(t *testing.T) {
	tr := genT(t, workload.Sinusoid, 5, 5, 2)
	a, _ := Sequential(tr)
	b, _ := ParallelSimple(tr, 4)
	if err := SimilarLength(a, b, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestCrossingsArePlausible(t *testing.T) {
	tr := genT(t, workload.Fractal, 8, 8, 13)
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Crossings (image vertices) can't exceed a small multiple of pieces
	// plus edges: each piece boundary is an endpoint or a crossing.
	if seq.Crossings > int64(4*seq.K()+2*seq.N) {
		t.Fatalf("implausible crossing count %d for k=%d n=%d", seq.Crossings, seq.K(), seq.N)
	}
}

func TestVisibleLengthPositiveAndStable(t *testing.T) {
	tr := genT(t, workload.Steps, 6, 6, 21)
	a, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.VisibleLength()-b.VisibleLength()) > 1e-12 {
		t.Fatal("sequential run not deterministic")
	}
}
