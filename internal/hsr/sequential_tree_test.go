package hsr

import (
	"testing"

	"terrainhsr/internal/workload"
)

func TestSequentialTreeMatchesSequential(t *testing.T) {
	for _, kind := range workload.Kinds {
		for _, hulls := range []bool{false, true} {
			tr := genT(t, kind, 8, 7, 11)
			slow, err := Sequential(tr)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			fast, err := SequentialTree(tr, hulls)
			if err != nil {
				t.Fatalf("%s hulls=%v: %v", kind, hulls, err)
			}
			if err := Equivalent(slow, fast, 1e-7, 1e-5); err != nil {
				t.Fatalf("%s hulls=%v: %v", kind, hulls, err)
			}
		}
	}
}

func TestSequentialTreeOutputSensitiveWork(t *testing.T) {
	// On a larger terrain the tree-backed sweep must beat the flat sweep's
	// charged work (O((n+k) polylog) vs O(n * profile)).
	tr := genT(t, workload.Fractal, 40, 40, 3)
	slow, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SequentialTree(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(slow, fast, 1e-7, 1e-5); err != nil {
		t.Fatal(err)
	}
	if fast.Work() >= slow.Work() {
		t.Fatalf("tree-backed sequential work %d not below flat %d", fast.Work(), slow.Work())
	}
}

func TestSequentialTreeOracle(t *testing.T) {
	tr := genT(t, workload.Steps, 9, 9, 21)
	res, err := SequentialTree(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	ys := []float64{1.3, 2.7, 4.1, 5.9, 7.35, 8.2}
	if err := OracleCheck(tr, res, ys, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialTreeEmpty(t *testing.T) {
	if _, err := SequentialTree(nil, false); err == nil {
		t.Fatal("nil terrain accepted")
	}
}
