package hsr

import (
	"testing"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/persist"
	"terrainhsr/internal/profiletree"
	"terrainhsr/internal/workload"
)

// TestPooledSolveDeterministic pins the identity the serving fleet depends
// on: a solve's output bytes must not depend on which recycled arena the
// pool happens to hand over. Treap shape decides pruning and piece-split
// order in epsilon-close crossing queries, so before priorities were
// reseeded per PCT node, a pool whose history differed (extra Ops created
// under concurrent load) flipped span endpoints at float-rounding
// granularity — caught in the wild by the churn soak's body-identity
// check. The perspective-transformed view reproduces it where the
// canonical view does not.
func TestPooledSolveDeterministic(t *testing.T) {
	base, err := workload.Generate(workload.Params{Kind: workload.Ridge, Rows: 16, Cols: 16, Seed: 7, Amplitude: 8})
	if err != nil {
		t.Fatal(err)
	}
	pt := geom.PerspectiveTransform{Eye: geom.Pt3{X: -6.2857142857142865, Y: 8.56, Z: 16.528709539728016}}
	tt, err := base.TransformShared(pt.Apply)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Prepare(tt)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := prep.ParallelOS(OSOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, opt OSOptions) {
		res, err := prep.ParallelOS(opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(res.Pieces) != len(baseline.Pieces) {
			t.Fatalf("%s: %d pieces vs %d", label, len(res.Pieces), len(baseline.Pieces))
		}
		for i := range res.Pieces {
			if res.Pieces[i].Span != baseline.Pieces[i].Span || res.Pieces[i].Edge != baseline.Pieces[i].Edge {
				t.Fatalf("%s: piece %d differs: %+v vs %+v", label, i, res.Pieces[i], baseline.Pieces[i])
			}
		}
	}
	// Pools pre-loaded with arenas of every seed history a live server
	// might have accumulated.
	for seed := uint64(1); seed <= 20; seed++ {
		pool := NewOpsPool()
		pool.release([]*profiletree.Ops{profiletree.NewOps(persist.NewArena(seed*12345), false)})
		check("pooled seed", OSOptions{Workers: 1, Pool: pool})
	}
	// Worker count must not change the bytes either: dynamic scheduling
	// assigns nodes to arenas unpredictably.
	for _, w := range []int{2, 3, 8} {
		for i := 0; i < 5; i++ {
			check("workers", OSOptions{Workers: w})
			check("pooled workers", OSOptions{Workers: w, Pool: NewOpsPool()})
		}
	}
}
