package hsr

import (
	"fmt"
	"math"
	"sort"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/terrain"
)

// The visibility oracle checks a Result against first principles, using
// only raw geometry — no envelopes, no ordering, no shared code paths with
// the solvers. For a sampled image column x (a world-y value), the edges
// whose plan projections cross the viewing ray at that y are enumerated
// with their ray-crossing depth; an edge is visible at that column iff no
// strictly nearer edge passes strictly above it. The oracle then demands
// that the Result reports exactly the visible edges at that column.
//
// This is the strongest correctness instrument in the test suite: any
// systematic error shared by all solvers (ordering, clipping, merging)
// breaks against it.

// columnHit is one edge crossing the sampled viewing ray.
type columnHit struct {
	edge  int32
	depth float64 // x coordinate of the plan crossing (distance from viewer)
	z     float64 // surface height at the crossing
}

// columnHits enumerates the edges crossing the viewing ray at world y,
// nearest first, skipping crossings within tol of an edge endpoint (where
// visibility is a measure-zero tie).
func columnHits(t *terrain.Terrain, y float64, tol float64) []columnHit {
	var hits []columnHit
	for ei, e := range t.Edges {
		p, q := t.PlanPt(e.V0), t.PlanPt(e.V1)
		dy := q.Z - p.Z
		if math.Abs(dy) <= tol {
			continue
		}
		u := (y - p.Z) / dy
		if u <= tol || u >= 1-tol {
			continue
		}
		a, b := t.Verts[e.V0], t.Verts[e.V1]
		hits = append(hits, columnHit{
			edge:  int32(ei),
			depth: p.X + u*(q.X-p.X),
			z:     a.Z + u*(b.Z-a.Z),
		})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].depth < hits[j].depth })
	return hits
}

// OracleCheck verifies res against the first-principles oracle on the
// given sample of world-y columns. tol guards against samples landing on
// breakpoints (ties); columns where any two hits are within tol in z are
// skipped as degenerate.
func OracleCheck(t *terrain.Terrain, res *Result, ys []float64, tol float64) error {
	byEdge := make(map[int32][]envelope.Span)
	for _, p := range res.Pieces {
		byEdge[p.Edge] = append(byEdge[p.Edge], p.Span)
	}
	inSpan := func(edge int32, x float64) bool {
		for _, sp := range byEdge[edge] {
			if x >= sp.X1-tol && x <= sp.X2+tol {
				return true
			}
		}
		return false
	}
	for _, y := range ys {
		hits := columnHits(t, y, 1e-7)
		running := math.Inf(-1)
		for i, h := range hits {
			visible := h.z > running+tol
			borderline := math.Abs(h.z-running) <= 10*tol
			if h.z > running {
				running = h.z
			}
			if borderline {
				continue
			}
			got := inSpan(h.edge, y)
			if got != visible {
				return fmt.Errorf("hsr: oracle mismatch at column y=%v, hit %d (edge %d, depth %v, z %v): oracle says visible=%v, result says %v",
					y, i, h.edge, h.depth, h.z, visible, got)
			}
		}
	}
	return nil
}
