package hsr

import (
	"terrainhsr/internal/cg"
	"terrainhsr/internal/envelope"
	"terrainhsr/internal/metrics"
	"terrainhsr/internal/persist"
	"terrainhsr/internal/pram"
	"terrainhsr/internal/profiletree"
	"terrainhsr/internal/terrain"
)

// SequentialTree runs the Reif-Sen sequential algorithm with the efficient
// structures of their paper (and of this one): the evolving profile lives
// in the balanced search structure with crossing queries, so each edge
// costs O((1 + k_e) polylog) instead of O(|profile|). This is the
// O((n + k) log^2 n)-style sequential bound the parallel algorithm is
// measured against in experiment TH5.
//
// Options mirror ParallelOS: summary pruning by default, the exact
// hull-augmented ACG with withHulls.
func SequentialTree(t *terrain.Terrain, withHulls bool) (*Result, error) {
	prep, err := Prepare(t)
	if err != nil {
		return nil, err
	}
	return prep.SequentialTree(withHulls)
}

// SequentialTree runs the tree-backed sequential sweep on the prepared
// order.
func (prep *Prepared) SequentialTree(withHulls bool) (*Result, error) {
	return prep.sequentialTree(withHulls, nil)
}

// SequentialTreePooled is SequentialTree drawing its tree arena from a pool,
// for batched solves.
func (prep *Prepared) SequentialTreePooled(withHulls bool, pool *OpsPool) (*Result, error) {
	return prep.sequentialTree(withHulls, pool)
}

func (prep *Prepared) sequentialTree(withHulls bool, pool *OpsPool) (*Result, error) {
	res := &Result{N: prep.t.NumEdges(), Order: prep.ord, Acct: &pram.Accounting{}}
	var o *profiletree.Ops
	if pool != nil {
		ops := pool.acquire(1, withHulls)
		defer pool.release(ops)
		o = ops[0]
		// Match the unpooled arena's priority stream: a pooled solve must
		// produce the same bytes as a fresh one, whatever arena history the
		// pool hands over.
		o.Arena.Reseed(0xfeed)
	} else {
		o = profiletree.NewOps(persist.NewArena(0xfeed), withHulls)
	}
	var profile profiletree.Tree
	var ctr metrics.Counters
	var maxTask, total int64

	for pos, seg := range prep.segs {
		var cost int64
		s := seg.Canon()
		if s.IsVerticalImage() {
			x := s.A.X
			zLo, zHi := s.A.Z, s.B.Z
			z, covered := profiletree.Eval(profile, x)
			ctr.QuerySteps++
			cost++
			switch {
			case !covered:
				res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[pos],
					Span: envelope.Span{X1: x, Z1: zLo, X2: x, Z2: zHi}})
			case zHi > z+1e-9:
				z1 := zLo
				if z > z1 {
					z1 = z
					res.Crossings++
					ctr.Crossings++
				}
				res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[pos],
					Span: envelope.Span{X1: x, Z1: z1, X2: x, Z2: zHi}})
			}
		} else {
			rels, st := cg.QueryRelations(o, profile, s)
			ctr.QuerySteps += st.Steps
			ctr.HullOps += st.HullQueries
			ctr.Crossings += st.Crossings
			res.Crossings += st.Crossings
			cost += st.Steps + st.HullQueries
			for _, sp := range cg.VisibleSpans(rels, s) {
				res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[pos], Span: sp})
			}
			runs := cg.VisibleRuns(rels, s, int32(pos))
			allocBefore := o.Arena.Allocs
			profile = o.Splice(profile, runs)
			delta := o.Arena.Allocs - allocBefore
			ctr.TreeOps += delta
			cost += delta
		}
		total += cost
		if cost > maxTask {
			maxTask = cost
		}
	}
	ctr.Spans = int64(len(res.Pieces))
	res.Counters = ctr
	res.Counters.TreeAllocs = o.Arena.Allocs
	res.Acct.AddPhase("sequential-tree", len(prep.segs), maxTask, total)
	sortPieces(res.Pieces)
	return res, nil
}
