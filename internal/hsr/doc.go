// Package hsr assembles the hidden-surface-removal algorithms: the
// brute-force reference, the sequential algorithm of Reif and Sen, the
// simple (copying) parallelization, the intersection-insensitive baseline,
// and the paper's output-sensitive parallel algorithm.
//
// All algorithms produce the same object-space answer: for every terrain
// edge, the maximal portions of its image-plane projection visible from the
// viewer at x = -inf. The portions, together with their endpoints and the
// crossings discovered on the way, form the combinatorial description of
// the visible scene whose size is the paper's k.
//
// Paper correspondence: this package is section 3 end to end. Prepare is
// the depth-order step (Fact 1, via package order); ParallelOS runs phase 1
// (Lemma 3.1, PCT intermediate profiles) and the output-sensitive phase 2
// (Lemmas 3.2–3.6: persistent prefix profiles queried Chazelle–Guibas
// style), assembling Theorem 3.1's O((n + k) polylog n) work bound;
// Sequential/SequentialTree are the Reif–Sen baseline the theorem is
// compared against, and BruteForce/AllPairs are the ground-truth and
// intersection-sensitive baselines of the experiments.
package hsr
