package hsr

import (
	"errors"
	"sync"
	"testing"

	"terrainhsr/internal/workload"
)

var errMismatch = errors.New("piece count mismatch across pooled solves")

func TestPhase2Name(t *testing.T) {
	cases := map[int]string{
		0:   "phase2os/layer-0",
		9:   "phase2os/layer-9",
		10:  "phase2os/layer-10",
		99:  "phase2os/layer-99",
		123: "phase2os/layer-123",
	}
	for d, want := range cases {
		if got := phase2Name(d); got != want {
			t.Errorf("phase2Name(%d) = %q, want %q", d, got, want)
		}
	}
}

func piecesIdentical(t *testing.T, label string, a, b []VisiblePiece) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: piece counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: piece %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func TestOpsPoolByteIdenticalResults(t *testing.T) {
	// Pooled arenas change treap shapes (recycled seeds, rewound slabs) but
	// must never change the computed pieces.
	tr := genT(t, workload.Fractal, 10, 10, 6)
	prep, err := Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, hulls := range []bool{false, true} {
		fresh, err := prep.ParallelOS(OSOptions{Workers: 2, WithHulls: hulls})
		if err != nil {
			t.Fatal(err)
		}
		pool := NewOpsPool()
		for round := 0; round < 3; round++ {
			pooled, err := prep.ParallelOS(OSOptions{Workers: 2, WithHulls: hulls, Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			piecesIdentical(t, "parallel pooled", fresh.Pieces, pooled.Pieces)
		}

		freshST, err := prep.SequentialTree(hulls)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			pooledST, err := prep.SequentialTreePooled(hulls, pool)
			if err != nil {
				t.Fatal(err)
			}
			piecesIdentical(t, "seqtree pooled", freshST.Pieces, pooledST.Pieces)
		}
	}
}

func TestOpsPoolRecyclesOps(t *testing.T) {
	p := NewOpsPool()
	first := p.acquire(3, false)
	p.release(first)
	second := p.acquire(3, false)
	// LIFO free list: all three must come back (any order).
	seen := map[any]bool{}
	for _, o := range first {
		seen[o] = true
	}
	for _, o := range second {
		if !seen[o] {
			t.Fatal("acquire after release created a fresh Ops instead of recycling")
		}
	}
	// Hull ops live in a separate free list.
	hullOps := p.acquire(1, true)
	if !hullOps[0].WithHulls {
		t.Fatal("hull acquire returned summary-mode ops")
	}
	if seen[hullOps[0]] {
		t.Fatal("hull acquire recycled a summary-mode ops")
	}
	p.release(second)
	p.release(hullOps)
}

func TestOpsPoolConcurrentSolves(t *testing.T) {
	tr := genT(t, workload.Rough, 8, 8, 2)
	prep, err := Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.ParallelOS(OSOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewOpsPool()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := prep.ParallelOS(OSOptions{Workers: 2, Pool: pool})
			if err != nil {
				errs <- err
				return
			}
			if len(r.Pieces) != len(want.Pieces) {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
