package hsr

import (
	"strconv"
	"sync"

	"terrainhsr/internal/cg"
	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/metrics"
	"terrainhsr/internal/parallel"
	"terrainhsr/internal/pct"
	"terrainhsr/internal/persist"
	"terrainhsr/internal/pram"
	"terrainhsr/internal/profiletree"
	"terrainhsr/internal/terrain"
)

// OSOptions configures the output-sensitive parallel algorithm.
type OSOptions struct {
	// Workers is the goroutine count (0 = all CPUs).
	Workers int
	// WithHulls enables the exact hull-augmented ACG pruning of the paper
	// (Lemmas 3.3-3.6). Disabled, pruning uses O(1) z-summaries: same
	// results, cheaper constants, weaker worst-case query bounds (ablation
	// A2 measures the difference).
	WithHulls bool
	// Pool, when non-nil, supplies recycled per-worker tree arenas instead
	// of freshly allocated ones, amortizing node storage across repeated
	// solves (the batch engine's main lever). The visible output is
	// identical with or without a pool.
	Pool *OpsPool
}

// ParallelOS runs the paper's output-sensitive parallel hidden-surface
// removal. Phase 1 builds the PCT's intermediate profiles (Lemma 3.1).
// Phase 2 walks the PCT top-down, layer by layer; at each internal node the
// right child's prefix profile is derived from the parent's by querying the
// left child's intermediate profile against it (Chazelle-Guibas style
// crossing queries, Lemma 3.6) and splicing in only the visible runs —
// every discovered crossing and every spliced breakpoint is a vertex of the
// final image, which is what bounds the work by O((n + k) polylog n)
// (Theorem 3.1). Prefix profiles are persistent trees, so the profiles of a
// layer share all unchanged structure (the paper's persistent ACG,
// Figure 3).
func ParallelOS(t *terrain.Terrain, opt OSOptions) (*Result, error) {
	prep, err := Prepare(t)
	if err != nil {
		return nil, err
	}
	return prep.ParallelOS(opt)
}

// ParallelOS runs the paper's algorithm on the prepared order.
func (prep *Prepared) ParallelOS(opt OSOptions) (*Result, error) {
	res := &Result{N: prep.t.NumEdges(), Order: prep.ord, Acct: &pram.Accounting{}}

	tree := pct.New(prep.segs, prep.ord.EdgeOrder)
	res.Phase1 = tree.BuildPhase1(opt.Workers, res.Acct)
	for _, st := range res.Phase1 {
		res.Counters.MergeSteps += st.MergeSteps
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	// Per-worker arenas and ops: nodes are immutable after creation, so
	// trees built by one worker may be read by any other in later layers.
	var ops []*profiletree.Ops
	if opt.Pool != nil {
		ops = opt.Pool.acquire(workers, opt.WithHulls)
		// No tree outlives this solve: pieces are copied into the result,
		// so the slabs may be rewound by the next acquire.
		defer opt.Pool.release(ops)
	} else {
		ops = make([]*profiletree.Ops, workers)
		for w := range ops {
			ops[w] = profiletree.NewOps(persist.NewArena(0x5eed+uint64(w)*0x9e37), opt.WithHulls)
		}
	}
	perWorker := make([]metrics.Counters, workers)

	sep := tree.Sep
	n := sep.N
	vis := make([]pct.LeafVisibility, n)
	prefix := make([]profiletree.Tree, len(sep.Lo))
	p2stats := make([]pct.Phase2Stats, sep.Height+1)
	var statsMu sync.Mutex

	for d := 0; d <= sep.Height; d++ {
		nodes := sep.NodesAtDepth(d)
		if len(nodes) == 0 {
			continue
		}
		rec := res.Acct.NewPhase(phase2Name(d))
		layer := &p2stats[d]
		layer.Depth = d
		parallel.ForDynamic(workers, len(nodes), 4, func(w, i int) {
			o := ops[w]
			ctr := &perWorker[w]
			node := nodes[i]
			// Treap priorities are a function of the PCT node, not of the
			// worker that happens to process it: dynamic scheduling and
			// recycled pool arenas then cannot change the built trees, so
			// the solve's output bytes are identical for any worker count
			// and any pool history (the identity the fleet tests assert).
			o.Arena.Reseed(0x5eed ^ (uint64(node)+1)*0x9e3779b97f4a7c15)
			P := prefix[node]
			var taskCost int64
			var layerMerge, layerCross, layerHeld, layerAlloc int64
			layerHeld = int64(P.Size())
			// PRAM task granularity follows the paper: each segment's
			// crossing query is an independent task ("for each segment s
			// of sigma_ij we compute the intersection of s with P_i"), and
			// the splice work is spread over its runs. The phase's critical
			// path is therefore the largest single query/splice unit, not a
			// whole node.
			var nTasks int
			var maxTaskCost int64
			if sep.IsLeaf(node) {
				pos := int(sep.Lo[node])
				lv := clipLeafOS(o, P, tree, pos, ctr, &taskCost)
				vis[pos] = lv
				layerCross += int64(lv.Crossings)
				nTasks, maxTaskCost = 1, taskCost+1
			} else {
				l, r := 2*node, 2*node+1
				prefix[l] = P
				allocBefore := o.Arena.Allocs
				var runs []profiletree.Run
				for _, pc := range tree.Inter[l] {
					rels, st := cg.QueryRelations(o, P, pc.Seg())
					ctr.QuerySteps += st.Steps
					ctr.HullOps += st.HullQueries
					ctr.Crossings += st.Crossings
					layerCross += st.Crossings
					qCost := st.Steps + st.HullQueries
					taskCost += qCost
					nTasks++
					if qCost+1 > maxTaskCost {
						maxTaskCost = qCost + 1
					}
					runs = append(runs, cg.VisibleRuns(rels, pc.Seg(), pc.Edge)...)
				}
				runs = coalesceRuns(runs)
				newT := o.Splice(P, runs)
				prefix[r] = newT
				delta := o.Arena.Allocs - allocBefore
				ctr.TreeOps += delta
				layerAlloc = delta
				layerMerge += int64(len(runs))
				taskCost += delta
				if len(runs) > 0 {
					perRun := delta/int64(len(runs)) + 1
					nTasks += len(runs)
					if perRun > maxTaskCost {
						maxTaskCost = perRun
					}
				}
				if nTasks == 0 {
					nTasks, maxTaskCost = 1, 1
				}
			}
			statsMu.Lock()
			layer.Nodes++
			layer.MergeSteps += layerMerge
			layer.Crossings += layerCross
			layer.PrefixPiecesHeld += layerHeld
			layer.PrefixPiecesAllocated += layerAlloc
			statsMu.Unlock()
			rec.TaskBatch(nTasks, maxTaskCost, taskCost+1)
		})
		rec.Close()
		// Release the parents' tree headers (subtrees stay shared).
		for _, node := range nodes {
			if !sep.IsLeaf(node) {
				prefix[node] = profiletree.Tree{}
			}
		}
	}

	for w := range ops {
		res.Counters.TreeAllocs += ops[w].Arena.Allocs
		res.Counters.Add(perWorker[w])
	}
	res.Phase2 = p2stats
	for _, st := range p2stats {
		res.Crossings += st.Crossings
	}
	for _, lv := range vis {
		res.Counters.Spans += int64(len(lv.Spans))
		for _, sp := range lv.Spans {
			res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[lv.Pos], Span: sp})
		}
	}
	sortPieces(res.Pieces)
	return res, nil
}

func phase2Name(d int) string {
	return "phase2os/layer-" + strconv.Itoa(d)
}

// clipLeafOS computes a leaf's visible spans against its persistent prefix
// profile.
func clipLeafOS(o *profiletree.Ops, P profiletree.Tree, tree *pct.Tree, pos int, ctr *metrics.Counters, taskCost *int64) pct.LeafVisibility {
	lv := pct.LeafVisibility{Pos: pos}
	s := tree.Segs[pos].Canon()
	if s.IsVerticalImage() {
		x := s.A.X
		zLo, zHi := s.A.Z, s.B.Z
		z, covered := profiletree.Eval(P, x)
		ctr.QuerySteps++
		*taskCost++
		switch {
		case !covered:
			lv.Spans = []envelope.Span{{X1: x, Z1: zLo, X2: x, Z2: zHi}}
		case zHi > z+geom.Eps:
			lv.Spans = []envelope.Span{{X1: x, Z1: geom.Max(zLo, z), X2: x, Z2: zHi}}
			if zLo < z {
				lv.Crossings = 1
			}
		}
		return lv
	}
	rels, st := cg.QueryRelations(o, P, s)
	ctr.QuerySteps += st.Steps
	ctr.HullOps += st.HullQueries
	ctr.Crossings += st.Crossings
	*taskCost += st.Steps + st.HullQueries
	lv.Spans = cg.VisibleSpans(rels, s)
	lv.Crossings = int(st.Crossings)
	return lv
}

// coalesceRuns merges runs that abut (the visible material of consecutive
// intermediate-profile pieces often continues across piece boundaries).
func coalesceRuns(runs []profiletree.Run) []profiletree.Run {
	if len(runs) <= 1 {
		return runs
	}
	out := runs[:1]
	for _, r := range runs[1:] {
		last := &out[len(out)-1]
		if r.X1 <= last.X2+1e-9 {
			last.X2 = r.X2
			last.Pieces = append(last.Pieces, r.Pieces...)
			continue
		}
		out = append(out, r)
	}
	return out
}
