package hsr

import (
	"math"
	"testing"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/terrain"
	"terrainhsr/internal/workload"
)

// Degenerate and adversarial inputs: every solver must either handle them
// or reject them cleanly — never panic, never disagree silently.

func solveAllAndCompare(t *testing.T, tr *terrain.Terrain, label string) {
	t.Helper()
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatalf("%s: sequential: %v", label, err)
	}
	for _, f := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"simple", func() (*Result, error) { return ParallelSimple(tr, 4) }},
		{"os", func() (*Result, error) { return ParallelOS(tr, OSOptions{Workers: 4}) }},
		{"os-hulls", func() (*Result, error) { return ParallelOS(tr, OSOptions{Workers: 4, WithHulls: true}) }},
	} {
		res, err := f.run()
		if err != nil {
			t.Fatalf("%s/%s: %v", label, f.name, err)
		}
		if err := SimilarLength(seq, res, 1e-6); err != nil {
			t.Fatalf("%s/%s: %v", label, f.name, err)
		}
	}
}

func TestFlatTerrainAllTies(t *testing.T) {
	tr, err := terrain.Grid{Rows: 6, Cols: 6, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return 5 }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, tr, "flat")
}

func TestSingleCellTerrain(t *testing.T) {
	tr, err := terrain.Grid{Rows: 1, Cols: 1, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return float64(i + j) }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, tr, "single-cell")
}

func TestStripTerrains(t *testing.T) {
	// One-row and one-column strips exercise minimal PCT shapes.
	row, err := terrain.Grid{Rows: 1, Cols: 12, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return math.Sin(float64(j)) }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, row, "row-strip")
	col, err := terrain.Grid{Rows: 12, Cols: 1, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return math.Cos(float64(i)) }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, col, "col-strip")
}

func TestNeedleTerrain(t *testing.T) {
	// One extreme spike: huge dynamic range in z.
	tr, err := terrain.Grid{Rows: 8, Cols: 8, Dx: 1, Dy: 1,
		H: func(i, j int) float64 {
			if i == 4 && j == 4 {
				return 1e6
			}
			return float64((i*3+j)%4) * 0.25
		}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, tr, "needle")
}

func TestPlaneTerrainEverythingCollinear(t *testing.T) {
	// A perfect plane: every edge lies on one line family; massive
	// collinearity stress for hulls and merges.
	tr, err := terrain.Grid{Rows: 7, Cols: 7, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return 0.5*float64(i) + 0.25*float64(j) }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, tr, "plane")
}

func TestTinyFeatureScale(t *testing.T) {
	// Heights many orders of magnitude below the grid spacing.
	tr, err := terrain.Grid{Rows: 6, Cols: 6, Dx: 1, Dy: 1,
		H: func(i, j int) float64 { return 1e-4 * float64((i*5+j*7)%11) }}.Build()
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, tr, "tiny-relief")
}

func TestLargeCoordinateOffsets(t *testing.T) {
	// The terrain sits far from the origin; relative predicates must hold.
	base, err := workload.Generate(workload.Params{Kind: workload.Fractal, Rows: 8, Cols: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := base.Transform(func(p geomPt3) (geomPt3, error) {
		p.X += 1e5
		p.Y += 2e5
		p.Z += 3e5
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	solveAllAndCompare(t, shifted, "offset")
}

func TestDeepOcclusionStack(t *testing.T) {
	// Monotonically descending terrain: the first row hides everything.
	tr, err := workload.Generate(workload.Params{
		Kind: workload.TiltedDown, Rows: 16, Cols: 8, Seed: 5, Slope: 2, Amplitude: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Output must be tiny compared to n.
	if seq.K() > tr.NumEdges()/4 {
		t.Fatalf("descending terrain should be mostly hidden: k=%d n=%d", seq.K(), tr.NumEdges())
	}
	solveAllAndCompare(t, tr, "descending")
}

// geomPt3 aliases the geometry point for the transform-based tests.
type geomPt3 = geom.Pt3
