package hsr

import (
	"fmt"
	"testing"
	"time"

	"terrainhsr/internal/workload"
)

func TestScaleSmoke(t *testing.T) {
	for _, rc := range []int{40, 80} {
		tr, err := workload.Generate(workload.Params{Kind: workload.Fractal, Rows: rc, Cols: rc, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		seq, _ := Sequential(tr)
		tSeq := time.Since(t0)
		t0 = time.Now()
		os, _ := ParallelOS(tr, OSOptions{Workers: 8})
		tOS := time.Since(t0)
		t0 = time.Now()
		osH, _ := ParallelOS(tr, OSOptions{Workers: 8, WithHulls: true})
		tOSH := time.Since(t0)
		if err := Equivalent(seq, os, 1e-7, 1e-5); err != nil {
			t.Fatalf("rc=%d: %v", rc, err)
		}
		if err := Equivalent(seq, osH, 1e-7, 1e-5); err != nil {
			t.Fatalf("rc=%d hulls: %v", rc, err)
		}
		fmt.Printf("n=%6d k=%6d  seq=%8v  os=%8v  osHulls=%8v  osWork=%d seqWork=%d allocs=%d\n",
			tr.NumEdges(), seq.K(), tSeq, tOS, tOSH, os.Work(), seq.Work(), os.Counters.TreeAllocs)
	}
}
