package hsr

import (
	"terrainhsr/internal/pct"
	"terrainhsr/internal/pram"
	"terrainhsr/internal/terrain"
)

// ParallelSimple runs the copying parallelization of Reif-Sen: phase 1
// builds all intermediate profiles of the PCT bottom-up, phase 2 pushes
// prefix profiles top-down with full envelope merges at every node.
//
// Its parallel time is polylogarithmic (given enough processors) but its
// work is Theta(n*k) in the worst case because prefix profiles are copied
// at each of the log n layers — the precise inefficiency the paper's
// persistent, intersection-driven phase 2 removes. It doubles as the A1
// "no persistence" ablation.
func ParallelSimple(t *terrain.Terrain, workers int) (*Result, error) {
	prep, err := Prepare(t)
	if err != nil {
		return nil, err
	}
	return prep.ParallelSimple(workers)
}

// ParallelSimple runs the copying parallelization on the prepared order.
func (prep *Prepared) ParallelSimple(workers int) (*Result, error) {
	res := &Result{N: prep.t.NumEdges(), Order: prep.ord, Acct: &pram.Accounting{}}

	tree := pct.New(prep.segs, prep.ord.EdgeOrder)
	res.Phase1 = tree.BuildPhase1(workers, res.Acct)
	for _, st := range res.Phase1 {
		res.Counters.MergeSteps += st.MergeSteps
	}

	leaves, p2stats := tree.Phase2Simple(workers, res.Acct)
	res.Phase2 = p2stats
	for _, st := range p2stats {
		res.Counters.MergeSteps += st.MergeSteps
		res.Counters.Crossings += st.Crossings
		res.Crossings += st.Crossings
	}
	for _, lv := range leaves {
		res.Counters.Spans += int64(len(lv.Spans))
		for _, sp := range lv.Spans {
			res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[lv.Pos], Span: sp})
		}
	}
	sortPieces(res.Pieces)
	return res, nil
}
