package hsr

import (
	"sync"

	"terrainhsr/internal/persist"
	"terrainhsr/internal/profiletree"
)

// OpsPool recycles per-worker profile-tree operations (treap arenas and node
// slabs) across solves. A fresh ParallelOS run allocates every persistent
// tree node individually and drops them all when it returns; for a batch of
// solves over the same terrain that garbage dominates the running time. An
// OpsPool instead hands each solve previously used Ops whose slabs are
// rewound (profiletree.Ops.Reset), so steady-state solves allocate almost
// nothing.
//
// Pooled Ops are keyed by the WithHulls mode, since hull aggregation is
// baked into an Ops at construction. The pool is safe for concurrent use;
// the Ops it hands out are each confined to one goroutine for the duration
// of a solve, as usual.
//
// A pooled Ops arrives with whatever priority-stream state its creation
// seed left behind, and which Ops a solve receives depends on what else is
// in flight. Solvers therefore Reseed the arena from their own task
// identity before building trees — treap shape feeds back into the solved
// bytes through epsilon-close query pruning, and answers must not vary
// with pool history or concurrency.
type OpsPool struct {
	mu   sync.Mutex
	free [2][]*profiletree.Ops
	seq  uint64
}

// NewOpsPool creates an empty pool.
func NewOpsPool() *OpsPool { return &OpsPool{} }

func hullIdx(withHulls bool) int {
	if withHulls {
		return 1
	}
	return 0
}

// acquire returns n reset Ops for the given pruning mode, creating any the
// pool cannot satisfy from its free list.
func (p *OpsPool) acquire(n int, withHulls bool) []*profiletree.Ops {
	idx := hullIdx(withHulls)
	out := make([]*profiletree.Ops, 0, n)
	p.mu.Lock()
	free := p.free[idx]
	for len(out) < n && len(free) > 0 {
		o := free[len(free)-1]
		free = free[:len(free)-1]
		out = append(out, o)
	}
	p.free[idx] = free
	for len(out) < n {
		p.seq++
		seed := 0x5eed + p.seq*0x9e37
		out = append(out, profiletree.NewOps(persist.NewArena(seed), withHulls))
	}
	p.mu.Unlock()
	for _, o := range out {
		o.Reset()
	}
	return out
}

// release returns Ops to the pool. The caller must have dropped every
// reference to trees built through them: the next acquire rewinds their
// slabs and overwrites the nodes.
func (p *OpsPool) release(ops []*profiletree.Ops) {
	if len(ops) == 0 {
		return
	}
	idx := hullIdx(ops[0].WithHulls)
	p.mu.Lock()
	p.free[idx] = append(p.free[idx], ops...)
	p.mu.Unlock()
}
