package hsr

import (
	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/pram"
	"terrainhsr/internal/terrain"
)

// Sequential runs the output-sensitive sequential algorithm of Reif and Sen
// (the paper's section 2 description): process edges front to back,
// maintain the upper profile of the edges seen so far, clip each new edge
// against the profile to obtain its visible portions, and fold the edge
// into the profile.
//
// The profile here is the flat slice representation, so a profile update
// costs O(|profile|); the asymptotic refinement of Reif-Sen (balanced
// dynamic structures) matters on adversarial inputs but not for the role
// this function plays as the trusted sequential baseline (TH5).
func Sequential(t *terrain.Terrain) (*Result, error) {
	prep, err := Prepare(t)
	if err != nil {
		return nil, err
	}
	return prep.Sequential()
}

// Sequential runs the Reif-Sen sweep on the prepared order.
func (prep *Prepared) Sequential() (*Result, error) {
	res := &Result{N: prep.t.NumEdges(), Order: prep.ord, Acct: &pram.Accounting{}}
	var profile envelope.Profile
	var maxTask, total int64
	for pos, seg := range prep.segs {
		spans, crossings, steps := clipOne(seg, profile)
		res.Crossings += int64(crossings)
		res.Counters.ClipSteps += int64(steps)
		res.Counters.Crossings += int64(crossings)
		res.Counters.Spans += int64(len(spans))
		for _, sp := range spans {
			res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[pos], Span: sp})
		}
		cost := int64(steps)
		if !seg.Canon().IsVerticalImage() {
			var st envelope.Stats
			profile, st = envelope.MergeStats(profile, envelope.FromSegment(seg, int32(pos)))
			res.Counters.MergeSteps += int64(st.Steps)
			cost += int64(st.Steps)
		}
		total += cost
		if cost > maxTask {
			maxTask = cost
		}
	}
	res.Acct.AddPhase("sequential", len(prep.segs), maxTask, total)
	sortPieces(res.Pieces)
	return res, nil
}

// BruteForce is the ground-truth reference: for every edge independently it
// rebuilds the upper envelope of all preceding edges by balanced
// divide-and-conquer and clips the edge against it. Quadratic (and worse)
// by design; use only on small inputs. Its merge order is entirely
// different from Sequential's incremental order, which makes agreement
// between the two a meaningful cross-check.
func BruteForce(t *terrain.Terrain) (*Result, error) {
	prep, err := Prepare(t)
	if err != nil {
		return nil, err
	}
	res := &Result{N: prep.t.NumEdges(), Order: prep.ord}
	for pos, seg := range prep.segs {
		env := envelope.BuildUpperEnvelope(prep.segs[:pos], 0)
		spans, crossings, steps := clipOne(seg, env)
		res.Crossings += int64(crossings)
		res.Counters.ClipSteps += int64(steps)
		res.Counters.Crossings += int64(crossings)
		res.Counters.Spans += int64(len(spans))
		for _, sp := range spans {
			res.Pieces = append(res.Pieces, VisiblePiece{Edge: prep.ord.EdgeOrder[pos], Span: sp})
		}
	}
	sortPieces(res.Pieces)
	return res, nil
}

// AllPairs is the intersection-sensitive baseline: it pays for every
// pairwise crossing I of the projected segments (the way general-scene
// parallel algorithms such as Goodrich-Ghouse-Bright do for arbitrary
// scenes) before filtering visibility. Visible pieces are computed exactly
// as in Sequential; the charged work additionally includes the Theta(n^2)
// pair tests and the I discovered crossings, which is the quantity the
// paper's output-sensitive algorithm avoids (experiment TH3).
func AllPairs(t *terrain.Terrain) (*Result, error) {
	prep, err := Prepare(t)
	if err != nil {
		return nil, err
	}
	res := &Result{N: prep.t.NumEdges(), Order: prep.ord}
	// Pay for all pairwise crossings in the image plane.
	segs := prep.segs
	var pairTests, found int64
	for i := 0; i < len(segs); i++ {
		if segs[i].IsVerticalImage() {
			continue
		}
		for j := i + 1; j < len(segs); j++ {
			if segs[j].IsVerticalImage() {
				continue
			}
			pairTests++
			if _, ok := geom.SegCrossOnOverlap(segs[i], segs[j]); ok {
				found++
			}
		}
	}
	res.Counters.QuerySteps += pairTests
	res.Counters.Crossings += found
	res.IntersectionsI = found

	// Then resolve visibility (sequentially, as its authors would).
	seqRes, err := Sequential(t)
	if err != nil {
		return nil, err
	}
	res.Pieces = seqRes.Pieces
	res.Crossings = seqRes.Crossings
	res.Counters.ClipSteps += seqRes.Counters.ClipSteps
	res.Counters.MergeSteps += seqRes.Counters.MergeSteps
	res.Counters.Spans += seqRes.Counters.Spans
	return res, nil
}
