package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	terrainhsr "terrainhsr"
	"terrainhsr/internal/obs"
	"terrainhsr/internal/workload"
)

// Options is the observability configuration of one replica handler. The
// zero value serves exactly as before observability existed: no tracing
// (/tracez answers 404), no histograms (/metricsz answers 404), structured
// logs through slog.Default, no slow-query reporting.
type Options struct {
	// Tracer samples queries for /tracez. Requests arriving with the
	// obs.TraceHeader header are always traced (the router made the
	// sampling decision); sampled responses echo the trace ID in the same
	// header and return their spans in obs.SpansHeader for the router to
	// graft. Nil disables tracing.
	Tracer *obs.Tracer
	// Metrics receives per-stage, per-plan-mode latency histograms from
	// every answered query and serves them on /metricsz (Prometheus text,
	// or the JSON snapshot with ?format=json). Nil disables histograms.
	Metrics *obs.Registry
	// Logger receives the handler's structured logs (errors, slow queries,
	// per-query debug lines). Nil selects slog.Default().
	Logger *slog.Logger
	// SlowQuery, when positive, logs any query at least this slow at Warn
	// level with its plan explanation and cost ledger attached.
	SlowQuery time.Duration
}

// New returns the HTTP handler of one serving replica: the service
// endpoints wired to the given query server, plus the observability
// endpoints the options enable. Tracing and metrics never change answers:
// solve bytes are identical with them on or off.
func New(srv *terrainhsr.Server, opt Options) http.Handler {
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	h := &handler{srv: srv, opt: opt}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/statsz", h.statsz)
	mux.HandleFunc("/terrains", h.terrains)
	mux.HandleFunc("/viewshed", h.viewshed)
	mux.HandleFunc("/flyover", h.flyover)
	// A nil Tracer or Registry serves 404 from its own ServeHTTP, so the
	// routes exist unconditionally and report their feature as disabled.
	mux.Handle("/tracez", opt.Tracer)
	mux.Handle("/metricsz", opt.Metrics)
	return mux
}

// BuildTerrain parses one -terrain spec (workload.ParseSpec's
// comma-separated key=value syntax) and generates the terrain. Shared by
// hsrserved (to register terrains) and hsrload (which regenerates the
// same terrains locally via the same parser and derives eye points from
// them).
func BuildTerrain(spec string) (string, *terrainhsr.Terrain, error) {
	id, p, err := workload.ParseSpec(spec)
	if err != nil {
		return "", nil, err
	}
	tr, err := terrainhsr.Generate(terrainhsr.GenParams{
		Kind:        string(p.Kind),
		Rows:        p.Rows,
		Cols:        p.Cols,
		Seed:        p.Seed,
		Amplitude:   p.Amplitude,
		RidgeHeight: p.RidgeHeight,
		Slope:       p.Slope,
		Shear:       p.Shear,
	})
	return id, tr, err
}

// ParseStoreSpec parses one -store spec: id=...,path=...
func ParseStoreSpec(spec string) (id, path string, err error) {
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return "", "", fmt.Errorf("malformed entry %q (want key=value)", kv)
		}
		switch k {
		case "id":
			id = v
		case "path":
			path = v
		default:
			return "", "", fmt.Errorf("unknown key %q", k)
		}
	}
	if id == "" || path == "" {
		return "", "", fmt.Errorf("spec needs id=... and path=...")
	}
	return id, path, nil
}

// handler serves the HTTP endpoints for one Server.
type handler struct {
	srv *terrainhsr.Server
	opt Options
}

// startTrace begins (or declines) a trace for one request and opens its
// request span. Propagated trace IDs always trace; otherwise the tracer's
// head-based sampler decides. The unsampled path allocates nothing.
func (h *handler) startTrace(r *http.Request) (*obs.Trace, obs.SpanToken) {
	tr := h.opt.Tracer.StartIf(r.Header.Get(obs.TraceHeader))
	return tr, tr.StartSpan(obs.StageRequest)
}

// maxHeaderSpans caps the spans exported in one obs.SpansHeader response
// header, keeping the header well under proxy size limits.
const maxHeaderSpans = 64

// finishTrace closes the request span and seals the trace into the
// tracer's ring. When the response headers are still open (headersOpen),
// it also echoes the trace ID in obs.TraceHeader and exports the finished
// spans in obs.SpansHeader for an upstream router to graft; streaming
// endpoints whose body is already in flight pass headersOpen=false and
// keep their spans local.
func (h *handler) finishTrace(w http.ResponseWriter, tr *obs.Trace, tok obs.SpanToken, headersOpen bool) {
	if !tr.Sampled() {
		return
	}
	tr.EndSpan(tok)
	if headersOpen {
		w.Header().Set(obs.TraceHeader, tr.ID())
		if spans := tr.SpansJSON(maxHeaderSpans); spans != "" {
			w.Header().Set(obs.SpansHeader, spans)
		}
	}
	h.opt.Tracer.Finish(tr)
}

// observe records one answered query into the stage latency histograms,
// labeled by the engine plan mode that produced the answer.
func (h *handler) observe(qr *terrainhsr.QueryResult, elapsed time.Duration) {
	m := h.opt.Metrics
	if m == nil || qr == nil {
		return
	}
	mode := qr.Mode
	if mode == "" {
		mode = "unknown"
	}
	m.Observe(obs.StageRequest, mode, elapsed)
	c := qr.Cost
	if c == nil {
		return
	}
	for _, st := range [...]struct {
		stage string
		us    int64
	}{
		{obs.StagePlan, c.PlanUS},
		{obs.StageCache, c.CacheUS},
		{obs.StageSolve, c.SolveUS},
		{obs.StageMerge, c.MergeUS},
		{obs.StagePageWait, c.PageWaitUS},
	} {
		if st.us > 0 {
			m.Observe(st.stage, mode, time.Duration(st.us)*time.Microsecond)
		}
	}
}

// logQuery emits the structured per-query log line: Debug for ordinary
// queries, Warn with the plan explanation and cost ledger for queries at
// or past the slow-query threshold.
func (h *handler) logQuery(tr *obs.Trace, qr *terrainhsr.QueryResult, terrain string, elapsed time.Duration) {
	slow := h.opt.SlowQuery > 0 && elapsed >= h.opt.SlowQuery
	lg := h.opt.Logger
	if !slow && !lg.Enabled(nil, slog.LevelDebug) {
		return
	}
	attrs := []any{
		slog.String("terrain", terrain),
		slog.String("cache", qr.Cache),
		slog.String("mode", qr.Mode),
		slog.Duration("elapsed", elapsed),
	}
	if id := tr.ID(); id != "" {
		attrs = append(attrs, slog.String("trace", id))
	}
	if !slow {
		lg.Debug("query", attrs...)
		return
	}
	attrs = append(attrs, slog.String("plan", qr.Plan))
	if qr.Cost != nil {
		attrs = append(attrs, slog.Any("cost", *qr.Cost))
	}
	lg.Warn("slow query", attrs...)
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (h *handler) statsz(w http.ResponseWriter, _ *http.Request) {
	h.writeJSON(w, h.srv.Stats())
}

// terrainInfo is one /terrains list entry.
type terrainInfo struct {
	ID        string    `json:"id"`
	Edges     int       `json:"edges"`
	Vertices  int       `json:"vertices"`
	Triangles int       `json:"triangles"`
	Levels    int       `json:"levels"`
	CellSizes []float64 `json:"cell_sizes,omitempty"`
	Store     string    `json:"store,omitempty"`
}

func (h *handler) terrains(w http.ResponseWriter, _ *http.Request) {
	ids := h.srv.TerrainIDs()
	out := struct {
		Terrains   []terrainInfo `json:"terrains"`
		Algorithms []string      `json:"algorithms"`
	}{Terrains: []terrainInfo{}}
	for _, id := range ids {
		// Describe never pages store tiles, so listing stays cheap.
		if info, ok := h.srv.Describe(id); ok {
			out.Terrains = append(out.Terrains, terrainInfo{
				ID: id, Edges: info.Edges, Vertices: info.Vertices, Triangles: info.Triangles,
				Levels: info.Levels, CellSizes: info.CellSizes, Store: info.Store,
			})
		}
	}
	for _, a := range terrainhsr.Algorithms() {
		out.Algorithms = append(out.Algorithms, string(a))
	}
	h.writeJSON(w, out)
}

// viewshedResponse is the JSON answer of a single-eye /viewshed query,
// minus the pieces array, which is streamed after these fields through
// Result.EachPiece rather than materialized (see writeViewshedJSON).
type viewshedResponse struct {
	Terrain      string                 `json:"terrain"`
	Eye          [3]float64             `json:"eye"`
	QuantizedEye [3]float64             `json:"quantized_eye"`
	Algorithm    string                 `json:"algorithm"`
	Cache        string                 `json:"cache"`
	Tiled        bool                   `json:"tiled"`
	Plan         string                 `json:"plan"`
	Mode         string                 `json:"mode,omitempty"`
	Level        int                    `json:"level"`
	Levels       int                    `json:"levels"`
	CellSize     float64                `json:"cell_size,omitempty"`
	Final        *bool                  `json:"final,omitempty"`
	N            int                    `json:"n"`
	K            int                    `json:"k"`
	ElapsedMS    float64                `json:"elapsed_ms"`
	Cost         *terrainhsr.CostLedger `json:"cost,omitempty"`
}

// responseFor fills the shared header fields of one answered query.
func responseFor(id string, eye terrainhsr.Point, qr *terrainhsr.QueryResult, elapsed time.Duration) viewshedResponse {
	return viewshedResponse{
		Terrain:      id,
		Eye:          [3]float64{eye.X, eye.Y, eye.Z},
		QuantizedEye: [3]float64{qr.Eye.X, qr.Eye.Y, qr.Eye.Z},
		Algorithm:    string(qr.Result.Algorithm()),
		Cache:        qr.Cache,
		Tiled:        qr.Tiled,
		Plan:         qr.Plan,
		Mode:         qr.Mode,
		Level:        qr.Level,
		Levels:       qr.Levels,
		CellSize:     qr.LevelCellSize,
		N:            qr.Result.N(),
		K:            qr.Result.K(),
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		Cost:         qr.Cost,
	}
}

// writeViewshedJSON writes the response header fields followed by a
// "pieces" array streamed piece by piece, never holding the converted
// slice.
func (h *handler) writeViewshedJSON(w http.ResponseWriter, resp viewshedResponse, r *terrainhsr.Result) {
	w.Header().Set("Content-Type", "application/json")
	buf, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		h.opt.Logger.Error("encode failed", slog.String("endpoint", "viewshed"), slog.Any("err", err))
		return
	}
	// MarshalIndent ends with "\n}"; splice the streamed array in before
	// the closing brace.
	buf = bytes.TrimSuffix(buf, []byte("\n}"))
	if _, err := w.Write(buf); err != nil {
		return
	}
	if _, err := io.WriteString(w, ",\n  \"pieces\": ["); err != nil {
		return
	}
	first := true
	var streamErr error
	r.EachPiece(func(p terrainhsr.Piece) bool {
		sep := ",\n    "
		if first {
			sep, first = "\n    ", false
		}
		b, err := json.Marshal(p)
		if err == nil {
			if _, err = io.WriteString(w, sep); err == nil {
				_, err = w.Write(b)
			}
		}
		streamErr = err
		return err == nil
	})
	if streamErr != nil {
		// The status line is already sent; the best we can do is log that
		// the streamed array was cut short rather than pretend it is whole.
		h.opt.Logger.Warn("pieces stream truncated",
			slog.String("terrain", resp.Terrain), slog.Any("err", streamErr))
		return
	}
	if first {
		io.WriteString(w, "]\n}\n")
		return
	}
	io.WriteString(w, "\n  ]\n}\n")
}

// viewshedProgressive answers one progressive query: a JSON object whose
// "passes" array streams the coarse preview pass followed by the exact
// finest pass, each with the usual response fields plus its own pieces
// (streamed piece by piece, like the single-pass response). The JSON
// prologue is written only once the first pass has solved, so errors that
// precede any output — unknown terrains, bad algorithms, unreadable
// stores — still get a proper error status instead of truncated JSON.
func (h *handler) viewshedProgressive(w http.ResponseWriter, base terrainhsr.Query) {
	firstPass, passOpen, pieceFirst := true, false, false
	err := h.srv.QueryProgressive(base,
		func(p terrainhsr.ProgressivePass) error {
			h.observe(p.Result, p.Elapsed)
			h.logQuery(base.Trace, p.Result, base.TerrainID, p.Elapsed)
			// Per-pass timing comes from the server: the pass's own answer
			// time, excluding the streaming of other passes' pieces.
			resp := responseFor(base.TerrainID, base.Eye, p.Result, p.Elapsed)
			final := p.Final
			resp.Final = &final
			buf, err := json.MarshalIndent(resp, "    ", "  ")
			if err != nil {
				return err
			}
			buf = bytes.TrimSuffix(buf, []byte("\n    }"))
			sep := ",\n    "
			if firstPass {
				w.Header().Set("Content-Type", "application/json")
				if _, err := fmt.Fprintf(w, "{\n  \"terrain\": %q,\n  \"passes\": [", base.TerrainID); err != nil {
					return err
				}
				firstPass, sep = false, "\n    "
			}
			if passOpen {
				if err := closePass(w, pieceFirst); err != nil {
					return err
				}
			}
			passOpen = true
			if _, err := io.WriteString(w, sep); err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
			_, err = io.WriteString(w, ",\n      \"pieces\": [")
			pieceFirst = true
			return err
		},
		func(p terrainhsr.Piece) error {
			b, err := json.Marshal(p)
			if err != nil {
				return err
			}
			sep := ",\n        "
			if pieceFirst {
				sep, pieceFirst = "\n        ", false
			}
			if _, err := io.WriteString(w, sep); err != nil {
				return err
			}
			_, err = w.Write(b)
			return err
		})
	if err != nil {
		if firstPass {
			// Nothing was written yet: report the failure properly.
			httpErr(w, queryStatus(err), "%v", err)
			return
		}
		// The status line and part of the body are already out; log that the
		// stream was cut short rather than pretend it is whole.
		h.opt.Logger.Warn("progressive stream truncated",
			slog.String("terrain", base.TerrainID), slog.Any("err", err))
		return
	}
	if passOpen {
		if err := closePass(w, pieceFirst); err != nil {
			return
		}
	}
	io.WriteString(w, "\n  ]\n}\n")
}

// closePass terminates one pass object in a progressive response.
func closePass(w io.Writer, pieceFirst bool) error {
	if pieceFirst { // no pieces were streamed: close the empty array inline
		_, err := io.WriteString(w, "]\n    }")
		return err
	}
	_, err := io.WriteString(w, "\n      ]\n    }")
	return err
}

// eyeSummary is one entry of a multi-eye /viewshed response.
type eyeSummary struct {
	Eye          [3]float64 `json:"eye"`
	QuantizedEye [3]float64 `json:"quantized_eye"`
	Cache        string     `json:"cache"`
	K            int        `json:"k"`
}

func (h *handler) viewshed(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	id := qv.Get("terrain")
	if id == "" {
		ids := h.srv.TerrainIDs()
		if len(ids) != 1 {
			httpErr(w, http.StatusBadRequest, "terrain parameter required (registered: %s)", strings.Join(ids, ", "))
			return
		}
		id = ids[0]
	}
	algo := terrainhsr.Algorithm(qv.Get("algorithm"))
	minDepth := 0.0
	if v := qv.Get("mindepth"); v != "" {
		var err error
		if minDepth, err = strconv.ParseFloat(v, 64); err != nil {
			httpErr(w, http.StatusBadRequest, "bad mindepth %q", v)
			return
		}
	}
	budget := 0.0
	if v := qv.Get("budget"); v != "" {
		var err error
		if budget, err = strconv.ParseFloat(v, 64); err != nil {
			httpErr(w, http.StatusBadRequest, "bad budget %q", v)
			return
		}
	}
	base := terrainhsr.Query{
		TerrainID:   id,
		Algorithm:   algo,
		MinDepth:    minDepth,
		ErrorBudget: budget,
		NoCache:     qv.Get("nocache") == "1",
	}

	eyeParams := qv["eye"]
	if len(eyeParams) == 0 {
		httpErr(w, http.StatusBadRequest, "eye parameter required (x,y,z)")
		return
	}
	tr, reqTok := h.startTrace(r)
	base.Trace = tr
	if len(eyeParams) > 1 {
		if qv.Get("progressive") == "1" {
			httpErr(w, http.StatusBadRequest, "progressive responses answer a single eye")
			return
		}
		h.viewshedMany(w, base, eyeParams, reqTok)
		return
	}
	eye, err := parseEye(eyeParams[0])
	if err != nil {
		httpErr(w, http.StatusBadRequest, "bad eye: %v", err)
		return
	}
	base.Eye = eye
	if qv.Get("progressive") == "1" {
		if f := qv.Get("format"); f != "" && f != "json" {
			httpErr(w, http.StatusBadRequest, "progressive responses are JSON only")
			return
		}
		// The body streams, so the spans header cannot wait for the end;
		// echo the trace ID up front and keep the spans in the local ring.
		if tr.Sampled() {
			w.Header().Set(obs.TraceHeader, tr.ID())
		}
		h.viewshedProgressive(w, base)
		h.finishTrace(w, tr, reqTok, false)
		return
	}
	t0 := time.Now()
	qr, err := h.srv.Query(base)
	if err != nil {
		h.finishTrace(w, tr, reqTok, true)
		httpErr(w, queryStatus(err), "%v", err)
		return
	}
	elapsed := time.Since(t0)
	h.observe(qr, elapsed)
	h.logQuery(tr, qr, id, elapsed)
	h.finishTrace(w, tr, reqTok, true)

	switch format := qv.Get("format"); format {
	case "", "json":
		h.writeViewshedJSON(w, responseFor(id, eye, qr, elapsed), qr.Result)
	case "svg":
		// Render against the level that actually answered: the pieces came
		// from that level's surface, and a coarse answer must not page the
		// finest level's tiles just to draw a frame.
		tr, err := h.srv.LevelTerrain(id, qr.Level)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, "terrain for render: %v", err)
			return
		}
		persp, err := tr.FromPerspective(qr.Eye, minDepth)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, "perspective for render: %v", err)
			return
		}
		width := intParam(qv.Get("width"), 800)
		w.Header().Set("Content-Type", "image/svg+xml")
		stream, err := terrainhsr.NewSVGStream(w, persp, terrainhsr.RenderOptions{
			Width: width, ShowHidden: true,
			Title: fmt.Sprintf("viewshed %s from %v,%v,%v", id, qr.Eye.X, qr.Eye.Y, qr.Eye.Z),
		})
		if err != nil {
			h.opt.Logger.Error("svg render failed", slog.String("terrain", id), slog.Any("err", err))
			return
		}
		var streamErr error
		qr.Result.EachPiece(func(p terrainhsr.Piece) bool {
			streamErr = stream.Piece(p)
			return streamErr == nil
		})
		if streamErr == nil {
			streamErr = stream.Close()
		}
		if streamErr != nil {
			h.opt.Logger.Error("svg render failed", slog.String("terrain", id), slog.Any("err", streamErr))
		}
	case "ascii":
		width := intParam(qv.Get("width"), 100)
		height := intParam(qv.Get("height"), 30)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := terrainhsr.RenderASCII(w, qr.Result, width, height); err != nil {
			h.opt.Logger.Error("ascii render failed", slog.String("terrain", id), slog.Any("err", err))
		}
	default:
		httpErr(w, http.StatusBadRequest, "unknown format %q (json, svg, ascii)", format)
	}
}

// viewshedMany answers a multi-eye query with a JSON summary. A sampled
// trace covers all eyes: their plan/solve spans interleave under one
// request span.
func (h *handler) viewshedMany(w http.ResponseWriter, base terrainhsr.Query, eyeParams []string, reqTok obs.SpanToken) {
	var eyes []terrainhsr.Point
	for _, part := range eyeParams {
		eye, err := parseEye(part)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "bad eye entry %q: %v", part, err)
			return
		}
		eyes = append(eyes, eye)
	}
	t0 := time.Now()
	results, err := h.srv.QueryMany(base, eyes)
	if err != nil {
		h.finishTrace(w, base.Trace, reqTok, true)
		httpErr(w, queryStatus(err), "%v", err)
		return
	}
	elapsed := time.Since(t0)
	for _, qr := range results {
		h.observe(qr, elapsed/time.Duration(len(results)))
	}
	h.finishTrace(w, base.Trace, reqTok, true)
	out := struct {
		Terrain   string       `json:"terrain"`
		Count     int          `json:"count"`
		ElapsedMS float64      `json:"elapsed_ms"`
		Results   []eyeSummary `json:"results"`
	}{Terrain: base.TerrainID, Count: len(results), ElapsedMS: float64(elapsed.Microseconds()) / 1000}
	for i, qr := range results {
		out.Results = append(out.Results, eyeSummary{
			Eye:          [3]float64{eyes[i].X, eyes[i].Y, eyes[i].Z},
			QuantizedEye: [3]float64{qr.Eye.X, qr.Eye.Y, qr.Eye.Z},
			Cache:        qr.Cache,
			K:            qr.Result.K(),
		})
	}
	h.writeJSON(w, out)
}

// maxFlyoverFrames bounds the frames parameter of one /flyover request.
const maxFlyoverFrames = 4096

// flyover answers a camera path as one frame-coherent session
// (Server.QuerySession): each frame warm-starts from the one before —
// identical eyes replay, moving eyes reuse verified tile verdicts — and the
// pieces of every frame are byte-identical to an independent /viewshed of
// the same eye. Parameters: terrain, eye (repeated waypoints), frames
// (optional: interpolate the waypoints to this many frames, or dwell a
// single eye), algorithm, mindepth, budget, format (json streams every
// frame; svg flies the whole path and renders the final frame).
func (h *handler) flyover(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	id := qv.Get("terrain")
	if id == "" {
		ids := h.srv.TerrainIDs()
		if len(ids) != 1 {
			httpErr(w, http.StatusBadRequest, "terrain parameter required (registered: %s)", strings.Join(ids, ", "))
			return
		}
		id = ids[0]
	}
	minDepth := 0.0
	if v := qv.Get("mindepth"); v != "" {
		var err error
		if minDepth, err = strconv.ParseFloat(v, 64); err != nil {
			httpErr(w, http.StatusBadRequest, "bad mindepth %q", v)
			return
		}
	}
	budget := 0.0
	if v := qv.Get("budget"); v != "" {
		var err error
		if budget, err = strconv.ParseFloat(v, 64); err != nil {
			httpErr(w, http.StatusBadRequest, "bad budget %q", v)
			return
		}
	}
	base := terrainhsr.Query{
		TerrainID:   id,
		Algorithm:   terrainhsr.Algorithm(qv.Get("algorithm")),
		MinDepth:    minDepth,
		ErrorBudget: budget,
	}
	var eyes []terrainhsr.Point
	for _, part := range qv["eye"] {
		eye, err := parseEye(part)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "bad eye entry %q: %v", part, err)
			return
		}
		eyes = append(eyes, eye)
	}
	if len(eyes) == 0 {
		httpErr(w, http.StatusBadRequest, "eye parameter required (x,y,z; repeat for waypoints)")
		return
	}
	frames := intParam(qv.Get("frames"), 0)
	if frames > maxFlyoverFrames {
		httpErr(w, http.StatusBadRequest, "frames %d exceeds the limit %d", frames, maxFlyoverFrames)
		return
	}
	path := flyoverPath(eyes, frames)
	tr, reqTok := h.startTrace(r)
	base.Trace = tr
	switch format := qv.Get("format"); format {
	case "", "json":
		// The body streams frame by frame; echo the trace ID up front and
		// keep the spans in the local ring (see viewshed's progressive path).
		if tr.Sampled() {
			w.Header().Set(obs.TraceHeader, tr.ID())
		}
		h.flyoverJSON(w, base, path)
		h.finishTrace(w, tr, reqTok, false)
	case "svg":
		h.flyoverSVG(w, base, path, intParam(qv.Get("width"), 800))
		h.finishTrace(w, tr, reqTok, false)
	default:
		httpErr(w, http.StatusBadRequest, "unknown format %q (json, svg)", format)
	}
}

// flyoverPath expands the eye waypoints into the flown path: no frames
// parameter flies the waypoints as given, a single eye dwells in place for
// frames frames (the replay fast path), and several eyes interpolate along
// the piecewise-linear route (WaypointPath's arc-length parameterization).
func flyoverPath(eyes []terrainhsr.Point, frames int) []terrainhsr.Point {
	if frames <= 0 || frames == len(eyes) {
		return eyes
	}
	if len(eyes) == 1 {
		out := make([]terrainhsr.Point, frames)
		for i := range out {
			out[i] = eyes[0]
		}
		return out
	}
	return terrainhsr.WaypointPath(eyes, frames).Viewpoints()
}

// flyoverFrameMeta is the trailing field block of one /flyover JSON frame —
// everything known only after the frame solved; the frame's pieces stream
// before it, so nothing is buffered per frame.
type flyoverFrameMeta struct {
	QuantizedEye    [3]float64 `json:"quantized_eye"`
	Cache           string     `json:"cache"`
	Replayed        bool       `json:"replayed"`
	TilesReused     int        `json:"tiles_reused"`
	TilesReverified int        `json:"tiles_reverified"`
	TilesResolved   int        `json:"tiles_resolved"`
	VerifyFailures  int        `json:"verify_failures"`
	Tiled           bool       `json:"tiled"`
	Level           int        `json:"level"`
	K               int        `json:"k"`
	ElapsedMS       float64    `json:"elapsed_ms"`
}

// flyoverJSON streams the session's frames as one JSON object: a "frames"
// array whose entries open with the requested eye, stream their pieces, and
// close with the frame's metadata (reuse ledger, timing). The prologue is
// written only once the first frame produces output, so a failing first
// frame still gets a proper error status.
func (h *handler) flyoverJSON(w http.ResponseWriter, base terrainhsr.Query, path []terrainhsr.Point) {
	wrote := false
	k := 0
	openFrame := func(i int, eye terrainhsr.Point) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/json")
			if _, err := fmt.Fprintf(w, "{\n  \"terrain\": %q,\n  \"frames\": [", base.TerrainID); err != nil {
				return err
			}
			wrote = true
		}
		sep := ",\n    "
		if i == 0 {
			sep = "\n    "
		}
		eb, err := json.Marshal([3]float64{eye.X, eye.Y, eye.Z})
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s{\n      \"eye\": %s,\n      \"pieces\": [", sep, eb)
		return err
	}
	for i, eye := range path {
		q := base
		q.Eye = eye
		opened, pieceFirst := false, true
		t0 := time.Now()
		qr, err := h.srv.QuerySession(q, func(p terrainhsr.Piece) error {
			if !opened {
				if err := openFrame(i, eye); err != nil {
					return err
				}
				opened = true
			}
			b, err := json.Marshal(p)
			if err != nil {
				return err
			}
			sep := ",\n        "
			if pieceFirst {
				sep, pieceFirst = "\n        ", false
			}
			if _, err := io.WriteString(w, sep); err != nil {
				return err
			}
			k++
			_, err = w.Write(b)
			return err
		})
		if err != nil {
			if !wrote {
				httpErr(w, queryStatus(err), "%v", err)
				return
			}
			h.opt.Logger.Warn("flyover stream truncated",
				slog.String("terrain", base.TerrainID), slog.Any("err", err))
			return
		}
		frameElapsed := time.Since(t0)
		h.observe(qr, frameElapsed)
		h.logQuery(base.Trace, qr, base.TerrainID, frameElapsed)
		if !opened { // a frame with no visible pieces still appears
			if err := openFrame(i, eye); err != nil {
				return
			}
		}
		meta := flyoverFrameMeta{
			QuantizedEye: [3]float64{qr.Eye.X, qr.Eye.Y, qr.Eye.Z},
			Cache:        qr.Cache,
			Tiled:        qr.Tiled,
			Level:        qr.Level,
			K:            k,
			ElapsedMS:    float64(frameElapsed.Microseconds()) / 1000,
		}
		k = 0
		if qr.Reuse != nil {
			meta.Replayed = qr.Reuse.Replayed
			meta.TilesReused = qr.Reuse.TilesReused
			meta.TilesReverified = qr.Reuse.TilesReverified
			meta.TilesResolved = qr.Reuse.TilesResolved
			meta.VerifyFailures = qr.Reuse.VerifyFailures
		}
		mb, err := json.MarshalIndent(meta, "    ", "  ")
		if err != nil {
			h.opt.Logger.Error("encode failed", slog.String("endpoint", "flyover"), slog.Any("err", err))
			return
		}
		// Close the pieces array and splice the metadata fields into the
		// still-open frame object (MarshalIndent's closing brace ends it).
		closer := "\n      ],"
		if pieceFirst {
			closer = "],"
		}
		if _, err := io.WriteString(w, closer); err != nil {
			return
		}
		if _, err := w.Write(bytes.TrimPrefix(mb, []byte("{"))); err != nil {
			return
		}
	}
	io.WriteString(w, "\n  ]\n}\n")
}

// flyoverSVG flies the whole path through the session and renders the final
// frame as SVG — the "what do I see when I get there" form. Earlier frames
// still run (and warm the session); only their pieces are discarded.
func (h *handler) flyoverSVG(w http.ResponseWriter, base terrainhsr.Query, path []terrainhsr.Point, width int) {
	var qr *terrainhsr.QueryResult
	var pieces []terrainhsr.Piece
	for i, eye := range path {
		q := base
		q.Eye = eye
		sink := func(terrainhsr.Piece) error { return nil }
		if i == len(path)-1 {
			sink = func(p terrainhsr.Piece) error { pieces = append(pieces, p); return nil }
		}
		var err error
		if qr, err = h.srv.QuerySession(q, sink); err != nil {
			httpErr(w, queryStatus(err), "%v", err)
			return
		}
	}
	tr, err := h.srv.LevelTerrain(base.TerrainID, qr.Level)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, "terrain for render: %v", err)
		return
	}
	persp, err := tr.FromPerspective(qr.Eye, base.MinDepth)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, "perspective for render: %v", err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	stream, err := terrainhsr.NewSVGStream(w, persp, terrainhsr.RenderOptions{
		Width: width, ShowHidden: true,
		Title: fmt.Sprintf("flyover %s, frame %d of %d at %v,%v,%v",
			base.TerrainID, len(path), len(path), qr.Eye.X, qr.Eye.Y, qr.Eye.Z),
	})
	if err != nil {
		h.opt.Logger.Error("svg render failed", slog.String("terrain", base.TerrainID), slog.Any("err", err))
		return
	}
	streamErr := error(nil)
	for _, p := range pieces {
		if streamErr = stream.Piece(p); streamErr != nil {
			break
		}
	}
	if streamErr == nil {
		streamErr = stream.Close()
	}
	if streamErr != nil {
		h.opt.Logger.Error("svg render failed", slog.String("terrain", base.TerrainID), slog.Any("err", streamErr))
	}
}

// parseEye parses "x,y,z".
func parseEye(s string) (terrainhsr.Point, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 3 {
		return terrainhsr.Point{}, fmt.Errorf("want x,y,z, got %q", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return terrainhsr.Point{}, err
		}
		vals[i] = v
	}
	return terrainhsr.Point{X: vals[0], Y: vals[1], Z: vals[2]}, nil
}

// intParam parses an optional positive integer parameter.
func intParam(s string, def int) int {
	if s == "" {
		return def
	}
	if v, err := strconv.Atoi(s); err == nil && v > 0 {
		return v
	}
	return def
}

// httpErr writes a plain-text error response.
func httpErr(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// queryStatus maps a Server.Query error to an HTTP status: unknown
// terrains are 404, everything else (bad eyes, bad algorithms) 400.
func queryStatus(err error) int {
	if strings.Contains(err.Error(), "no terrain") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// writeJSON writes v as indented JSON.
func (h *handler) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		h.opt.Logger.Error("encode failed", slog.Any("err", err))
	}
}
