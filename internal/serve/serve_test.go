package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	terrainhsr "terrainhsr"
	"terrainhsr/internal/loadgen"
	"terrainhsr/internal/workload"
)

// newTestHandler registers one small tiled-routed terrain and returns the
// HTTP handler over it.
func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	tr, err := terrainhsr.Generate(terrainhsr.GenParams{Kind: "massive", Rows: 48, Cols: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := terrainhsr.NewServer(terrainhsr.ServerOptions{TileCells: 1024})
	if err := srv.Register("demo", tr); err != nil {
		t.Fatal(err)
	}
	return New(srv, Options{})
}

// flyoverFrameJSON mirrors one /flyover frame for decoding in tests.
type flyoverFrameJSON struct {
	Eye          [3]float64        `json:"eye"`
	QuantizedEye [3]float64        `json:"quantized_eye"`
	Pieces       []json.RawMessage `json:"pieces"`
	Cache        string            `json:"cache"`
	Replayed     bool              `json:"replayed"`
	TilesReused  int               `json:"tiles_reused"`
	K            int               `json:"k"`
}

func getFlyover(t *testing.T, h http.Handler, url string) ([]byte, int) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec.Body.Bytes(), rec.Code
}

func TestFlyoverJSONStreamsFrames(t *testing.T) {
	h := newTestHandler(t)
	// Two waypoints interpolated to 4 frames, then the hand-built JSON must
	// parse and each frame must report k == len(pieces).
	body, code := getFlyover(t, h,
		"/flyover?terrain=demo&eye=-34,24.4,8&eye=-20,24.4,7&frames=4&mindepth=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Terrain string             `json:"terrain"`
		Frames  []flyoverFrameJSON `json:"frames"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, body)
	}
	if resp.Terrain != "demo" || len(resp.Frames) != 4 {
		t.Fatalf("terrain %q with %d frames, want demo with 4", resp.Terrain, len(resp.Frames))
	}
	for i, f := range resp.Frames {
		if f.Cache != "session" {
			t.Fatalf("frame %d cache %q, want session", i, f.Cache)
		}
		if f.K != len(f.Pieces) {
			t.Fatalf("frame %d reports k=%d but streamed %d pieces", i, f.K, len(f.Pieces))
		}
		if f.Replayed {
			t.Fatalf("frame %d of a moving path claims a replay", i)
		}
	}
}

func TestFlyoverDwellReplays(t *testing.T) {
	h := newTestHandler(t)
	body, code := getFlyover(t, h, "/flyover?terrain=demo&eye=-34,24.4,8&frames=3&mindepth=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Frames []flyoverFrameJSON `json:"frames"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, body)
	}
	if len(resp.Frames) != 3 {
		t.Fatalf("%d frames, want 3", len(resp.Frames))
	}
	if resp.Frames[0].Replayed {
		t.Fatal("first frame replayed")
	}
	for i, f := range resp.Frames[1:] {
		if !f.Replayed {
			t.Fatalf("dwell frame %d did not replay", i+1)
		}
		if len(f.Pieces) != len(resp.Frames[0].Pieces) {
			t.Fatalf("replayed frame %d has %d pieces, first frame %d",
				i+1, len(f.Pieces), len(resp.Frames[0].Pieces))
		}
	}
}

func TestFlyoverSVGRendersFinalFrame(t *testing.T) {
	h := newTestHandler(t)
	body, code := getFlyover(t, h,
		"/flyover?terrain=demo&eye=-34,24.4,8&eye=-30,24.4,7.5&format=svg&mindepth=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	s := string(body)
	if !strings.Contains(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatalf("response is not an SVG document:\n%.200s", s)
	}
	if !strings.Contains(s, "frame 2 of 2") {
		t.Fatalf("SVG title does not name the final frame:\n%.300s", s)
	}
}

func TestFlyoverErrors(t *testing.T) {
	h := newTestHandler(t)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/flyover?terrain=nope&eye=-34,24.4,8", http.StatusNotFound},
		{"/flyover?terrain=demo", http.StatusBadRequest},
		{"/flyover?terrain=demo&eye=bogus", http.StatusBadRequest},
		{"/flyover?terrain=demo&eye=-34,24.4,8&frames=99999", http.StatusBadRequest},
		{"/flyover?terrain=demo&eye=-34,24.4,8&format=ascii", http.StatusBadRequest},
	} {
		if _, code := getFlyover(t, h, tc.url); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.url, code, tc.code)
		}
	}
}

// TestFlyoverSessionLoadIdentity drives the session scenario end to end:
// loadgen's /flyover legs replayed several times over concurrent workers
// against a real handler must normalize to identical bodies — the reuse
// ledger varies with what the serving session remembers, the pieces never
// do.
func TestFlyoverSessionLoadIdentity(t *testing.T) {
	spec := "id=demo,kind=massive,rows=48,cols=48,seed=7"
	id, tr, err := BuildTerrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := terrainhsr.NewServer(terrainhsr.ServerOptions{TileCells: 1024})
	if err := srv.Register(id, tr); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(New(srv, Options{}))
	defer hs.Close()

	_, p, err := workload.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := loadgen.Scenario(loadgen.ScenarioOptions{
		BaseURL:  hs.URL,
		Terrains: []loadgen.NamedTerrain{{ID: id, T: wt}},
		Mix:      "session",
		Count:    6,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := loadgen.Run(loadgen.Options{Workers: 2, Repeats: 3, CheckBodies: true}, reqs)
	if rep.Errors != 0 {
		t.Fatalf("%d errors: %v", rep.Errors, rep.ErrorSamples)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d identity mismatches across session repeats", rep.Mismatches)
	}
	if st := srv.Stats(); st.SessionFrames == 0 {
		t.Fatalf("no session frames counted: %+v", st)
	}
}
