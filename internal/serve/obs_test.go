package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	terrainhsr "terrainhsr"
	"terrainhsr/internal/obs"
)

// newObsHandler builds a handler with the full observability stack: a
// tracer (sampling rate sampleEvery) and a metrics registry.
func newObsHandler(t *testing.T, sampleEvery int) (http.Handler, *obs.Tracer, *obs.Registry) {
	t.Helper()
	tr, err := terrainhsr.Generate(terrainhsr.GenParams{Kind: "fractal", Rows: 16, Cols: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := terrainhsr.NewServer(terrainhsr.ServerOptions{})
	if err := srv.Register("demo", tr); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(sampleEvery, 16)
	reg := obs.NewRegistry()
	return New(srv, Options{Tracer: tracer, Metrics: reg}), tracer, reg
}

const obsEye = "/viewshed?terrain=demo&eye=-8,6,20"

// TestTracePropagation is the replica half of cross-tier tracing: a
// request carrying X-HSR-Trace is always traced (even at sampling rate
// zero), echoes the same ID back, exports its spans in X-HSR-Spans, and
// lands in /tracez under that ID with the stages a solve passes through.
func TestTracePropagation(t *testing.T) {
	h, tracer, _ := newObsHandler(t, 0) // rate 0: only propagated IDs trace
	req := httptest.NewRequest(http.MethodGet, obsEye, nil)
	req.Header.Set(obs.TraceHeader, "router-abc-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "router-abc-123" {
		t.Fatalf("trace ID echo = %q, want the propagated ID", got)
	}
	spans := obs.ParseSpans(rec.Header().Get(obs.SpansHeader))
	if len(spans) == 0 {
		t.Fatal("no spans exported in " + obs.SpansHeader)
	}
	stages := make(map[string]bool)
	for _, s := range spans {
		stages[s.Stage] = true
	}
	for _, want := range []string{obs.StageRequest, obs.StagePlan, obs.StageCache, obs.StageSolve} {
		if !stages[want] {
			t.Fatalf("exported spans missing stage %q (got %v)", want, stages)
		}
	}
	if n := tracer.TotalFinished(); n != 1 {
		t.Fatalf("tracer finished %d traces, want 1", n)
	}

	// The trace is queryable by its propagated ID.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tracez?id=router-abc-123", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"router-abc-123"`) {
		t.Fatalf("/tracez?id=...: status %d body %.200s", rec.Code, rec.Body.String())
	}
	// The cost ledger rides on the trace.
	if !strings.Contains(rec.Body.String(), `"cost"`) {
		t.Fatal("/tracez trace carries no cost ledger")
	}
}

// TestUnsampledNoTraceHeaders checks the off switch: without a propagated
// ID and at sampling rate zero, responses carry no trace headers and the
// ring stays empty.
func TestUnsampledNoTraceHeaders(t *testing.T) {
	h, tracer, _ := newObsHandler(t, 0)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, obsEye, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get(obs.TraceHeader) != "" || rec.Header().Get(obs.SpansHeader) != "" {
		t.Fatal("unsampled response leaked trace headers")
	}
	if n := tracer.TotalFinished(); n != 0 {
		t.Fatalf("tracer finished %d traces for unsampled traffic", n)
	}
}

// TestMetricszEndpoint checks that served queries feed the per-stage
// histograms and that /metricsz renders both exposition formats.
func TestMetricszEndpoint(t *testing.T) {
	h, _, reg := newObsHandler(t, 0)
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, obsEye, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, rec.Code)
		}
	}
	snap := reg.Snapshot()
	var reqCount uint64
	for _, e := range snap.Hists {
		if e.Stage == obs.StageRequest {
			reqCount += e.Hist.Count
		}
	}
	if reqCount != 3 {
		t.Fatalf("request-stage observations = %d, want 3", reqCount)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	body := rec.Body.String()
	if rec.Code != http.StatusOK ||
		!strings.Contains(body, "# TYPE "+obs.MetricFamily+" histogram") ||
		!strings.Contains(body, obs.MetricFamily+"_bucket") {
		t.Fatalf("/metricsz Prometheus text: status %d body %.200s", rec.Code, body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz?format=json", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"hists"`) {
		t.Fatalf("/metricsz JSON: status %d body %.200s", rec.Code, rec.Body.String())
	}
}

// TestObsDisabledEndpoints404 checks the zero-value Options contract:
// without a tracer or registry the endpoints answer 404, not panic.
func TestObsDisabledEndpoints404(t *testing.T) {
	tr, err := terrainhsr.Generate(terrainhsr.GenParams{Kind: "fractal", Rows: 10, Cols: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := terrainhsr.NewServer(terrainhsr.ServerOptions{})
	if err := srv.Register("demo", tr); err != nil {
		t.Fatal(err)
	}
	h := New(srv, Options{})
	for _, path := range []string{"/tracez", "/metricsz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s without obs configured: status %d, want 404", path, rec.Code)
		}
	}
}

// TestSlowQueryThreshold sanity-checks the flag plumbing: a threshold of
// zero disables slow logging, a tiny one triggers it. The log output
// itself goes to slog; here we only assert the handler keeps serving.
func TestSlowQueryThreshold(t *testing.T) {
	trn, err := terrainhsr.Generate(terrainhsr.GenParams{Kind: "fractal", Rows: 16, Cols: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := terrainhsr.NewServer(terrainhsr.ServerOptions{})
	if err := srv.Register("demo", trn); err != nil {
		t.Fatal(err)
	}
	h := New(srv, Options{SlowQuery: time.Nanosecond})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, obsEye, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d with slow-query logging armed", rec.Code)
	}
}
