// Package serve is the HTTP surface of the viewshed query service: the
// handler cmd/hsrserved mounts, factored out as a library so the fleet
// tier (internal/fleet, cmd/hsrrouter), the load generator (cmd/hsrload)
// and the in-process fleet experiments can spin up byte-identical replicas
// without forking a binary. One replica = one terrainhsr.Server wrapped in
// New; the fleet router proxies the same endpoints unchanged, so a
// response body never depends on whether it traveled through a router —
// the property the fleet identity tests pin down byte for byte.
//
// Endpoints (see cmd/hsrserved for the operator-facing documentation):
//
//	GET /healthz   liveness probe; responds "ok".
//	GET /statsz    JSON terrainhsr.ServerStats snapshot.
//	GET /terrains  JSON list of registered terrains and their sizes
//	               (manifest-derived for stores; listing never pages tiles).
//	GET /viewshed  answer a viewshed query (JSON, SVG or ASCII; single or
//	               multi-eye batches; optional progressive coarse-then-exact
//	               streaming; see cmd/hsrserved for the parameter list).
//	GET /flyover   answer a camera path as a frame-coherent session
//	               (Server.QuerySession): frames warm-start from each other
//	               and stream as framed JSON, or render the final frame as
//	               SVG; see cmd/hsrserved for the parameter list.
//
// The package also owns the -terrain / -store spec parsing (BuildTerrain,
// ParseStoreSpec) so the serving binary, the load generator and the tests
// agree on one spec syntax.
package serve
