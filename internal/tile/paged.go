package tile

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/hsr"
	"terrainhsr/internal/parallel"
	"terrainhsr/internal/terrain"
)

// This file is the out-of-core solve path. SolvePaged runs the same banded
// front-to-back algorithm as Solve, but never holds a resident
// terrain.Terrain: tile heights stream in through a HeightSource, a band's
// pages are retired as soon as its silhouette is merged into the front
// envelope, and tiles the envelope proves hidden are culled *before* their
// heights are requested — hidden terrain is never read from disk.
//
// Bit-identity with the resident path is a contract, not an accident. The
// canonical-y of a vertex is height-independent under every transform the
// library applies (grid build, plan shear, perspective divide), so halos and
// cull boxes come from a per-band Y table computed without paging anything.
// Vertices that do page in are pushed through syntactically identical
// floating-point expressions (see vertex below), sub-terrains replicate
// extract's cell and vertex discovery order exactly, and the band barrier is
// the very same bandState used by Solve.

// pagerMeter is the optional cost-accounting face of a HeightSource.
// store.Pager satisfies it; sources that do not are simply not metered.
// Readings are cumulative, so a solve attributes its own share by
// differencing around itself (approximate when solves share a source).
type pagerMeter interface {
	// WaitNanos is cumulative time demand requests spent blocked on reads.
	WaitNanos() int64
	// BytesRead is cumulative height bytes read from tile files.
	BytesRead() int64
	// PageIns is cumulative tile files read.
	PageIns() int64
}

// meterReading is one snapshot of a pagerMeter (zero when unmetered).
type meterReading struct{ waitNS, bytes, ins int64 }

// readMeter snapshots src's meter when it has one.
func readMeter(src HeightSource) meterReading {
	if m, ok := src.(pagerMeter); ok {
		return meterReading{waitNS: m.WaitNanos(), bytes: m.BytesRead(), ins: m.PageIns()}
	}
	return meterReading{}
}

// HeightSource serves height samples of a grid terrain on demand.
// store.Pager satisfies it structurally; tests substitute recorders. All
// coordinates are vertex (sample) indices, rectangles are inclusive.
type HeightSource interface {
	// Rect makes samples [r0, r1] x [c0, c1] available and returns an
	// accessor valid at least until the next Retire at or behind r1.
	Rect(r0, r1, c0, c1 int) (func(i, j int) float64, error)
	// Retire tells the source that samples with row index < row no longer
	// influence the solve and may be released.
	Retire(row int)
	// MaxHeight returns an upper bound on the samples in the inclusive
	// rectangle, without materializing them. ok=false means no bound is
	// known (the rectangle must then be treated as unboundedly tall).
	MaxHeight(r0, r1, c0, c1 int) (float64, bool)
}

// PagedGrid describes a uniform grid terrain whose heights live behind a
// HeightSource. Rows and Cols count cells (one less than sample rows/cols),
// matching Partition. Cell is the sample spacing along both axes. Shear > 0
// applies the plan shear q.Y += Shear*q.X that dem.ToTerrain applies; zero or
// negative disables it. View, when non-nil, applies the perspective transform
// after the shear — exactly the resident frameTerrain chain.
type PagedGrid struct {
	Rows, Cols int
	Cell       float64
	Shear      float64
	View       *geom.PerspectiveTransform
	Src        HeightSource
}

// vertex builds vertex (i, j) with height h through the canonical chain.
// Each stage is the same floating-point expression the resident path
// evaluates — terrain.Grid.Build's coordinates, dem.ToTerrain's shear,
// geom.PerspectiveTransform.Apply — so the result is bit-identical even if a
// compiler fuses multiply-adds (identical expression shapes fuse identically).
func (g *PagedGrid) vertex(i, j int, h float64) (geom.Pt3, error) {
	q := geom.Pt3{X: float64(i) * g.Cell, Y: float64(j) * g.Cell, Z: h}
	if g.Shear > 0 {
		q.Y += g.Shear * q.X
	}
	if g.View == nil {
		return q, nil
	}
	return g.View.Apply(q)
}

// vertexYs computes the canonical y of every vertex in rows [r0, r1] (all
// columns), indexed [i-r0][j]. Y is independent of height under the whole
// transform chain — X and Y never read Z — so the table costs no paging; it
// is what lets halos and cull boxes be computed for tiles that are never
// read. A behind-eye vertex fails here exactly as the resident per-frame
// transform would fail it.
func (g *PagedGrid) vertexYs(r0, r1 int) ([][]float64, error) {
	out := make([][]float64, r1-r0+1)
	for i := r0; i <= r1; i++ {
		row := make([]float64, g.Cols+1)
		for j := 0; j <= g.Cols; j++ {
			v, err := g.vertex(i, j, 0)
			if err != nil {
				return nil, fmt.Errorf("tile: vertex (%d,%d): %w", i, j, err)
			}
			row[j] = v.Y
		}
		out[i-r0] = row
	}
	return out, nil
}

// zUpper bounds the transformed height of any vertex in sample rows [r0, r1]
// whose raw height is at most maxH. Without a perspective the transformed
// height is the raw height (shear touches only Y). Under a perspective,
// (maxH-Eye.Z)/depth is monotone in depth — and float rounding preserves
// monotonicity — so the bound is attained at one of the row extremes. The
// bound is >= the resident path's exact per-vertex maximum, which keeps the
// paged cull a subset of the resident cull; since culling never changes
// results (see TestCullingNeverChangesResult), results stay identical.
func (g *PagedGrid) zUpper(r0, r1 int, maxH float64) float64 {
	if g.View == nil {
		return maxH
	}
	num := maxH - g.View.Eye.Z
	z0 := num / (float64(r0)*g.Cell - g.View.Eye.X)
	z1 := num / (float64(r1)*g.Cell - g.View.Eye.X)
	return math.Max(z0, z1)
}

// pagedCellIntervals is cellIntervals against the band's Y table: the
// canonical-y interval of every cell in rows [r0, r1), indexed
// [row-r0][col], with the same corner ordering and min/max nesting.
func pagedCellIntervals(ys [][]float64) [][]yiv {
	cols := len(ys[0]) - 1
	out := make([][]yiv, len(ys)-1)
	for i := 0; i < len(ys)-1; i++ {
		row := make([]yiv, cols)
		for j := 0; j < cols; j++ {
			a := ys[i][j]
			b := ys[i][j+1]
			c := ys[i+1][j]
			d := ys[i+1][j+1]
			row[j] = yiv{
				lo: math.Min(math.Min(a, b), math.Min(c, d)),
				hi: math.Max(math.Max(a, b), math.Max(c, d)),
			}
		}
		out[i] = row
	}
	return out
}

// pagedOwnedIV is ownedExtent's interval half against the Y table: the
// canonical-y interval of vertex rows [r0, r1] x columns [c0, c1], same
// iteration order and accumulation. The height half is replaced by the
// source's MaxHeight bound (see zUpper).
func pagedOwnedIV(ys [][]float64, r0, r1, c0, c1 int) yiv {
	iv := yiv{lo: math.Inf(1), hi: math.Inf(-1)}
	for i := r0; i <= r1; i++ {
		for j := c0; j <= c1; j++ {
			y := ys[i-r0][j]
			iv.lo = math.Min(iv.lo, y)
			iv.hi = math.Max(iv.hi, y)
		}
	}
	return iv
}

// SolvePaged computes the visible scene of the paged grid terrain,
// byte-identical to Solve over the equivalent resident terrain. The paging
// lifecycle per depth band: compute the band's Y table (no heights), cull
// tiles the front envelope covers (their heights are never requested), page
// in and solve the surviving tiles, merge the band silhouette, then retire
// the band's pages through Src.Retire.
func SolvePaged(g *PagedGrid, p *Partition, solve SolveFunc, opt Options) (*hsr.Result, Stats, error) {
	var stats Stats
	if g == nil || g.Src == nil {
		return nil, stats, fmt.Errorf("tile: paged grid needs a height source")
	}
	if g.Rows < 1 || g.Cols < 1 || g.Cell <= 0 {
		return nil, stats, fmt.Errorf("tile: paged grid %dx%d cells with spacing %v", g.Rows, g.Cols, g.Cell)
	}
	if g.Rows != p.Rows || g.Cols != p.Cols {
		return nil, stats, fmt.Errorf("tile: partition is %dx%d cells but paged grid is %dx%d", p.Rows, p.Cols, g.Rows, g.Cols)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	tileWorkers := workers
	if tileWorkers > p.NumCols {
		tileWorkers = p.NumCols
	}
	subWorkers := workers / tileWorkers
	if subWorkers < 1 {
		subWorkers = 1
	}

	stats.Bands, stats.Tiles = p.NumBands, p.NumTiles()

	co := opt.Coherence
	if co != nil {
		co.prepare(p.NumTiles())
	}
	bs := &bandState{emit: opt.Emit, front: opt.Seed, co: co, cols: p.NumCols}
	solveStart := readMeter(g.Src)
	bandStart := solveStart
	for b := 0; b < p.NumBands; b++ {
		bsp := beginBand(opt.Trace, &stats)
		r0, r1 := p.BandRows(b)
		ys, err := g.vertexYs(r0, r1)
		if err != nil {
			return nil, stats, err
		}
		ivs := pagedCellIntervals(ys)

		outcomes := make([]*tileOutcome, p.NumCols)
		errs := make([]error, p.NumCols)
		var failed atomic.Bool
		parallel.ForDynamic(tileWorkers, p.NumCols, 1, func(_, c int) {
			if failed.Load() {
				return
			}
			oc, err := solvePagedTile(g, p, b, c, r0, r1, ys, ivs, bs.front, solve, subWorkers, opt.NoCull, co)
			if err != nil {
				errs[c] = err
				failed.Store(true)
				return
			}
			outcomes[c] = oc
		})
		for c, err := range errs {
			if err != nil {
				return nil, stats, fmt.Errorf("tile: band %d col %d: %w", b, c, err)
			}
		}
		mt0 := time.Now()
		if err := bs.finishBand(b, outcomes, &stats); err != nil {
			return nil, stats, err
		}
		mergeDur := time.Since(mt0)
		stats.MergeNS += mergeDur.Nanoseconds()
		// The band's silhouette is merged; rows in front of r1 can no longer
		// influence anything (row r1 itself is shared with the next band).
		g.Src.Retire(r1)
		bandEnd := readMeter(g.Src)
		bsp.end(b, &stats, mt0, mergeDur, bandEnd.waitNS-bandStart.waitNS, bandEnd.bytes-bandStart.bytes)
		bandStart = bandEnd
	}
	solveEnd := readMeter(g.Src)
	stats.PageWaitNS = solveEnd.waitNS - solveStart.waitNS
	stats.BytesPaged = solveEnd.bytes - solveStart.bytes
	stats.PageIns = solveEnd.ins - solveStart.ins
	return bs.result(terrain.EdgeCountForGrid(g.Rows, g.Cols), &stats), stats, nil
}

// solvePagedTile runs one tile of the paged solve. The cull check uses only
// the Y table and the source's height bound; heights are requested (and
// counted by the source) only when the tile survives. With coherence active,
// a tile with a reusable prior verdict first tries the cone check against
// its frame-invariant world box — built from the same grid geometry and the
// same MaxHeight bound — which costs no paging either.
func solvePagedTile(g *PagedGrid, p *Partition, b, c, r0, r1 int, ys [][]float64, ivs [][]yiv, front envelope.Profile, solve SolveFunc, workers int, noCull bool, co *Coherence) (*tileOutcome, error) {
	_, _, c0, c1 := p.TileCells(b, c)
	verifyFailed := false
	if co != nil && !noCull && co.reusable(b*p.NumCols+c) {
		if lo, hi, z, ok := co.Bounds[b*p.NumCols+c].Cone(co.Eye, co.MinDepth); ok && front.CoversAbove(lo, hi, z) {
			return &tileOutcome{culled: true, reused: true}, nil
		}
		verifyFailed = true
	}
	owned := pagedOwnedIV(ys, r0, r1, c0, c1)
	if !noCull {
		if maxH, ok := g.Src.MaxHeight(r0, r1, c0, c1); ok {
			if front.CoversAbove(owned.lo, owned.hi, g.zUpper(r0, r1, maxH)) {
				return &tileOutcome{culled: true, verifyFailed: verifyFailed}, nil
			}
		}
	}
	sub, err := extractPaged(g, p, b, c, r0, r1, haloRanges(ivs, owned))
	if err != nil {
		return nil, err
	}
	res, err := solve(sub.t, workers)
	if err != nil {
		return nil, err
	}
	oc := &tileOutcome{counters: res.Counters, crossings: res.Crossings, verifyFailed: verifyFailed}
	for _, pc := range res.Pieces {
		if !sub.owned[pc.Edge] {
			continue // a halo edge: some other tile owns and reports it
		}
		pc.Edge = sub.globalEdge[pc.Edge]
		oc.pieces = append(oc.pieces, pc)
	}
	return oc, nil
}

// extractPaged materializes the sub-terrain of the tile in band b, column
// slot c, from paged heights. It replicates extract exactly: the same cells
// in the same order yield the same triangle triples, hence the same
// first-reference vertex numbering, hence (through terrain.New on
// bit-identical vertices) the same local edges. The global edge ids that
// extract reads from an EdgeIndex come from the closed-form grid numbering
// instead — no resident terrain exists to index.
func extractPaged(g *PagedGrid, p *Partition, b, c int, r0, r1 int, ranges [][2]int) (*subTerrain, error) {
	or0, or1, oc0, oc1 := p.TileCells(b, c)

	// The bounding column range of the halo, to page in one rectangle.
	jlo, jhi := 0, 0
	any := false
	for _, rg := range ranges {
		if rg[0] >= rg[1] {
			continue
		}
		if !any || rg[0] < jlo {
			jlo = rg[0]
		}
		if rg[1] > jhi {
			jhi = rg[1]
		}
		any = true
	}
	if !any {
		return nil, fmt.Errorf("tile: band %d col %d selected no cells", b, c)
	}
	at, err := g.Src.Rect(r0, r1, jlo, jhi) // vertex cols of cells [jlo, jhi)
	if err != nil {
		return nil, fmt.Errorf("tile: band %d col %d: %w", b, c, err)
	}

	// Gather the triangles of every included cell — the canonical grid
	// triples terrain.Grid.Build emits for cell (i, j), in extract's order.
	nvc := int32(g.Cols + 1)
	var gtris [][3]int32
	for i := r0; i < r1; i++ {
		rlo, rhi := ranges[i-r0][0], ranges[i-r0][1]
		for j := rlo; j < rhi; j++ {
			a := int32(i)*nvc + int32(j)
			bb := int32(i+1)*nvc + int32(j)
			cc := int32(i+1)*nvc + int32(j) + 1
			d := int32(i)*nvc + int32(j) + 1
			gtris = append(gtris, [3]int32{a, bb, cc}, [3]int32{a, cc, d})
		}
	}

	// Remap vertices to a compact local numbering (first-reference order,
	// as extract does), building each through the canonical chain.
	localOf := make(map[int32]int32)
	var verts []geom.Pt3
	var gverts []int32
	var vertErr error
	localID := func(gv int32) int32 {
		lv, ok := localOf[gv]
		if !ok {
			lv = int32(len(verts))
			localOf[gv] = lv
			vi, vj := int(gv)/int(nvc), int(gv)%int(nvc)
			v, err := g.vertex(vi, vj, at(vi, vj))
			if err != nil && vertErr == nil {
				vertErr = fmt.Errorf("tile: vertex (%d,%d): %w", vi, vj, err)
			}
			verts = append(verts, v)
			gverts = append(gverts, gv)
		}
		return lv
	}
	tris := make([][3]int32, len(gtris))
	for k, gt := range gtris {
		tris[k] = [3]int32{localID(gt[0]), localID(gt[1]), localID(gt[2])}
	}
	if vertErr != nil {
		return nil, vertErr
	}

	sub, err := terrain.New(verts, tris)
	if err != nil {
		return nil, fmt.Errorf("tile: band %d col %d: %w", b, c, err)
	}

	st := &subTerrain{
		t:          sub,
		globalEdge: make([]int32, len(sub.Edges)),
		owned:      make([]bool, len(sub.Edges)),
	}
	for le, ed := range sub.Edges {
		ge, oi, oj, err := gridEdge(g.Cols, int(nvc), gverts[ed.V0], gverts[ed.V1])
		if err != nil {
			return nil, fmt.Errorf("tile: band %d col %d: local edge %d: %w", b, c, le, err)
		}
		st.globalEdge[le] = ge
		st.owned[le] = oi >= or0 && oi < or1 && oj >= oc0 && oj < oc1
	}
	return st, nil
}

// gridEdgeBase returns how many global edges are discovered before cell
// (i, j) in the canonical triangle walk of an R x cols cell grid. Each cell
// past the first of its row adds 3 new edges (its right vertical, its
// diagonal, and one horizontal); the first cell of a row adds its left
// vertical too; cells of the first row also add their front horizontal.
func gridEdgeBase(cols, i, j int) int32 {
	base := 3*(i*cols+j) + i
	if j >= 1 {
		base++
	}
	if i == 0 {
		base += j
	} else {
		base += cols
	}
	return int32(base)
}

// gridEdge resolves the grid edge joining global samples g0 and g1 to its
// global id and owner cell, in closed form — the same numbering NewEdgeIndex
// derives by walking a resident terrain's triangles, and the same owner rule
// (the cell of the edge's lowest-numbered incident triangle). Validated
// against NewEdgeIndex exhaustively in tests.
func gridEdge(cols, nvc int, g0, g1 int32) (id int32, oi, oj int, err error) {
	if g0 > g1 {
		g0, g1 = g1, g0
	}
	i0, j0 := int(g0)/nvc, int(g0)%nvc
	i1, j1 := int(g1)/nvc, int(g1)%nvc
	switch {
	case i1-i0 == 1 && j1-j0 == 0:
		// Vertical (along depth): first seen as edge (a,b) of cell
		// (i0, j0-1)'s second-column triangle walk, or opening cell (i0, 0).
		if j0 == 0 {
			id = gridEdgeBase(cols, i0, 0)
			oi, oj = i0, 0
		} else {
			id = gridEdgeBase(cols, i0, j0-1) + 2
			if j0 == 1 {
				id++
			}
			oi, oj = i0, j0-1
		}
	case i1-i0 == 0 && j1-j0 == 1:
		// Horizontal (across): owned behind, except on the front row.
		if i0 == 0 {
			id = gridEdgeBase(cols, 0, j0) + 3
			if j0 == 0 {
				id++
			}
			oi, oj = 0, j0
		} else {
			id = gridEdgeBase(cols, i0-1, j0)
			if j0 == 0 {
				id++
			}
			oi, oj = i0-1, j0
		}
	case i1-i0 == 1 && j1-j0 == 1:
		// Diagonal of cell (i0, j0).
		id = gridEdgeBase(cols, i0, j0) + 1
		if j0 == 0 {
			id++
		}
		oi, oj = i0, j0
	default:
		return 0, 0, 0, fmt.Errorf("tile: samples %d and %d share no grid edge", g0, g1)
	}
	return id, oi, oj, nil
}
