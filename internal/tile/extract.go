package tile

import (
	"fmt"
	"math"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/terrain"
)

// This file builds the per-tile sub-terrains. A tile's sub-terrain contains
// its owned cell rectangle plus a halo: every cell of the same band whose
// image-x (canonical y) interval intersects the owned rectangle's interval.
// The halo is what makes per-tile solves exact — within a band, every
// potential occluder of an owned point lies at the same canonical y, hence
// in a cell whose y-interval meets the owned interval. Occluders from
// earlier (front) bands are accounted separately, by clipping against the
// accumulated silhouette envelope; cells of later bands cannot occlude
// anything in this band because the viewer-to-point sight segment only
// crosses terrain at strictly smaller world x.
//
// Halo edges participate in the local solve as occluders only: their visible
// pieces are reported by the one tile that owns them, so seam edges are
// never emitted twice.

// yiv is a closed interval of canonical y (image x) values.
type yiv struct{ lo, hi float64 }

func (a yiv) intersects(b yiv, pad float64) bool {
	return a.lo <= b.hi+pad && b.lo <= a.hi+pad
}

// cellIntervals computes the canonical-y interval of every cell in rows
// [r0, r1), indexed [row-r0][col]. It reads the (possibly transformed)
// vertex table, so it is recomputed per perspective frame.
func cellIntervals(t *terrain.Terrain, r0, r1 int) [][]yiv {
	cols := t.GridCols
	nvc := cols + 1
	out := make([][]yiv, r1-r0)
	for i := r0; i < r1; i++ {
		row := make([]yiv, cols)
		for j := 0; j < cols; j++ {
			// The cell's four corner vertices.
			a := t.Verts[i*nvc+j].Y
			b := t.Verts[i*nvc+j+1].Y
			c := t.Verts[(i+1)*nvc+j].Y
			d := t.Verts[(i+1)*nvc+j+1].Y
			row[j] = yiv{
				lo: math.Min(math.Min(a, b), math.Min(c, d)),
				hi: math.Max(math.Max(a, b), math.Max(c, d)),
			}
		}
		out[i-r0] = row
	}
	return out
}

// ownedExtent returns the canonical-y interval and the maximum height of the
// owned cell rectangle [r0, r1) × [c0, c1) (vertex rows r0..r1, columns
// c0..c1). The interval bounds the image-x range any owned piece can occupy;
// the height bounds its z — together they are the tile's cullable bounding
// box in the image plane.
func ownedExtent(t *terrain.Terrain, r0, r1, c0, c1 int) (iv yiv, maxZ float64) {
	nvc := t.GridCols + 1
	iv = yiv{lo: math.Inf(1), hi: math.Inf(-1)}
	maxZ = math.Inf(-1)
	for i := r0; i <= r1; i++ {
		for j := c0; j <= c1; j++ {
			v := t.Verts[i*nvc+j]
			iv.lo = math.Min(iv.lo, v.Y)
			iv.hi = math.Max(iv.hi, v.Y)
			maxZ = math.Max(maxZ, v.Z)
		}
	}
	return iv, maxZ
}

// haloRanges returns, per band row, the half-open cell-column range that the
// tile's sub-terrain must include: every band cell whose canonical-y
// interval intersects the owned interval. Per row the cell intervals are
// monotone in the column index (canonical y increases with world y at fixed
// depth under every transform the library applies), so the range is
// contiguous.
func haloRanges(ivs [][]yiv, owned yiv) [][2]int {
	pad := 1e-7 * (1 + math.Abs(owned.lo) + math.Abs(owned.hi))
	out := make([][2]int, len(ivs))
	for i, row := range ivs {
		lo, hi := len(row), len(row)
		for j, iv := range row {
			if iv.intersects(owned, pad) {
				lo = j
				break
			}
		}
		for j := len(row) - 1; j >= lo; j-- {
			if row[j].intersects(owned, pad) {
				hi = j + 1
				break
			}
		}
		if lo >= len(row) {
			lo, hi = 0, 0
		}
		out[i] = [2]int{lo, hi}
	}
	return out
}

// subTerrain is one tile's solvable terrain patch with the bookkeeping to
// translate its answers back into the full terrain's vocabulary.
type subTerrain struct {
	t *terrain.Terrain
	// globalEdge[le] is the full-terrain edge id of local edge le.
	globalEdge []int32
	// owned[le] reports whether this tile owns local edge le (exactly one
	// tile owns every global edge, so owned pieces are emitted exactly once).
	owned []bool
}

// extract materializes the sub-terrain of the tile in band b, column slot c,
// whose per-row cell ranges were computed by haloRanges for rows [r0, r1).
func extract(t *terrain.Terrain, p *Partition, idx *EdgeIndex, b, c int, r0, r1 int, ranges [][2]int) (*subTerrain, error) {
	or0, or1, oc0, oc1 := p.TileCells(b, c)

	// Gather the triangles of every included cell.
	var gtris []int32
	for i := r0; i < r1; i++ {
		jlo, jhi := ranges[i-r0][0], ranges[i-r0][1]
		// The owned columns are always included, intersecting by construction.
		for j := jlo; j < jhi; j++ {
			base := int32(2 * (i*p.Cols + j))
			gtris = append(gtris, base, base+1)
		}
	}
	if len(gtris) == 0 {
		return nil, fmt.Errorf("tile: band %d col %d selected no cells", b, c)
	}

	// Remap vertices to a compact local numbering.
	localOf := make(map[int32]int32)
	var verts []geom.Pt3
	var gverts []int32
	localID := func(gv int32) int32 {
		lv, ok := localOf[gv]
		if !ok {
			lv = int32(len(verts))
			localOf[gv] = lv
			verts = append(verts, t.Verts[gv])
			gverts = append(gverts, gv)
		}
		return lv
	}
	tris := make([][3]int32, len(gtris))
	for k, gt := range gtris {
		src := t.Tris[gt]
		tris[k] = [3]int32{localID(src[0]), localID(src[1]), localID(src[2])}
	}

	sub, err := terrain.New(verts, tris)
	if err != nil {
		return nil, fmt.Errorf("tile: band %d col %d: %w", b, c, err)
	}

	st := &subTerrain{
		t:          sub,
		globalEdge: make([]int32, len(sub.Edges)),
		owned:      make([]bool, len(sub.Edges)),
	}
	for le, ed := range sub.Edges {
		ge, ok := idx.Global(gverts[ed.V0], gverts[ed.V1])
		if !ok {
			return nil, fmt.Errorf("tile: band %d col %d: local edge %d has no global counterpart", b, c, le)
		}
		st.globalEdge[le] = ge
		oi, oj := idx.Owner(ge)
		st.owned[le] = oi >= or0 && oi < or1 && oj >= oc0 && oj < oc1
	}
	return st, nil
}
