package tile

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/hsr"
	"terrainhsr/internal/metrics"
	"terrainhsr/internal/obs"
	"terrainhsr/internal/parallel"
	"terrainhsr/internal/terrain"
)

// SolveFunc solves one tile sub-terrain with the given intra-tile worker
// budget and returns its visible scene (in the sub-terrain's local edge
// numbering). The caller supplies it, closing over the algorithm choice and
// any arena pools; package tile stays agnostic of which hidden-surface
// algorithm runs inside a tile.
type SolveFunc func(sub *terrain.Terrain, workers int) (*hsr.Result, error)

// Options configures a tiled solve.
type Options struct {
	// Workers is the total worker budget shared by concurrent tiles and the
	// solves inside them (0 = all CPUs).
	Workers int
	// NoCull disables the per-tile occlusion cull against the accumulated
	// silhouette envelope. Culling never changes results; the switch exists
	// for tests and measurements.
	NoCull bool
	// Emit, when non-nil, streams the visible scene instead of
	// materializing it: every depth band's clipped pieces are handed to
	// Emit — canonically sorted within the band — as soon as the band
	// completes, and the returned Result carries no Pieces slice (counters
	// and crossings are still filled). Peak memory then holds one band of
	// pieces instead of the whole scene; sorting a collected stream
	// canonically yields exactly the pieces a materializing solve returns.
	// An Emit error aborts the solve.
	Emit func(p hsr.VisiblePiece) error
	// Seed, when non-empty, initializes the front envelope: the solve
	// behaves as if an occluder with this silhouette stood in front of the
	// whole terrain, culling and clipping against it exactly as against
	// earlier bands. Callers that already hold the profile of terrain in
	// front (a flyover session, a stacked solve) pass it here instead of
	// re-deriving it. The seed is read, never mutated.
	Seed envelope.Profile
	// Coherence, when non-nil, activates frame-coherent verify-then-reuse
	// and verdict recording; see the Coherence type.
	Coherence *Coherence
	// Trace, when sampled, receives one span per depth band (tiles
	// solved/culled/reused, band-barrier merge time, page-in wait when
	// paged). A nil Trace — the unsampled case — costs nothing on the
	// solve path. Tracing never influences the solve: results are
	// byte-identical with it on or off.
	Trace *obs.Trace
}

// Stats reports how a tiled solve spent its effort.
type Stats struct {
	// Bands and Tiles describe the partition actually used.
	Bands, Tiles int
	// TilesSolved and TilesCulled split the tiles into those that ran a
	// local solve and those skipped because the accumulated front envelope
	// already covered their entire bounding box.
	TilesSolved, TilesCulled int
	// LocalPieces counts owned visible pieces before clipping against the
	// front envelope; Pieces-of-result minus LocalPieces is the seam cost.
	LocalPieces int
	// EnvelopeSize is the final accumulated silhouette's piece count.
	EnvelopeSize int
	// MergeNS is the total time (ns) spent in band barriers: clipping owned
	// pieces against the front envelope and merging band silhouettes.
	MergeNS int64
	// PageWaitNS is the total time (ns) a paged solve spent blocked on
	// page-ins (zero for resident solves). With concurrent solves sharing
	// one pager the attribution is approximate.
	PageWaitNS int64
	// BytesPaged and PageIns are the bytes and tile files a paged solve
	// read (zero for resident solves; same sharing caveat as PageWaitNS).
	BytesPaged, PageIns int64
}

// tileOutcome is one tile's contribution, in global edge numbering.
type tileOutcome struct {
	pieces    []hsr.VisiblePiece
	counters  metrics.Counters
	crossings int64
	culled    bool
	// reused marks a cull decided by a passed cone check (no extent scan);
	// verifyFailed marks a tile whose cone check ran and failed.
	reused       bool
	verifyFailed bool
}

// Solve computes the visible scene of a grid terrain by solving row×col
// tiles independently and merging front to back. The result is equivalent
// to a monolithic solve of the same terrain (same visible pieces up to
// float tolerance at piece boundaries) while peak memory scales with a
// band of tiles rather than with the whole terrain.
//
// Bands are processed front to back. Within a band, tiles solve
// concurrently: each extracts its sub-terrain (owned cells plus same-band
// halo, see extract.go), runs solve on it, and keeps the visible pieces of
// the edges it owns. The band barrier then clips every kept piece against
// the accumulated silhouette envelope of all earlier bands — occlusion
// crossing band seams — and merges the band's own unclipped silhouette into
// the accumulator for the bands behind it.
//
// idx may be nil (it is then derived from t); callers solving many frames
// of vertex-only transformed terrains should build one EdgeIndex and reuse
// it, since it depends only on the shared topology.
func Solve(t *terrain.Terrain, p *Partition, idx *EdgeIndex, solve SolveFunc, opt Options) (*hsr.Result, Stats, error) {
	var stats Stats
	if t == nil || !t.IsGrid() {
		return nil, stats, fmt.Errorf("tile: terrain is not a grid (build it with terrain.Grid or terrainhsr.NewGridTerrain/Generate)")
	}
	if t.GridRows != p.Rows || t.GridCols != p.Cols {
		return nil, stats, fmt.Errorf("tile: partition is %dx%d cells but terrain is %dx%d", p.Rows, p.Cols, t.GridRows, t.GridCols)
	}
	if idx == nil {
		var err error
		if idx, err = NewEdgeIndex(t); err != nil {
			return nil, stats, err
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	tileWorkers := workers
	if tileWorkers > p.NumCols {
		tileWorkers = p.NumCols
	}
	subWorkers := workers / tileWorkers
	if subWorkers < 1 {
		subWorkers = 1
	}

	stats.Bands, stats.Tiles = p.NumBands, p.NumTiles()

	co := opt.Coherence
	if co != nil {
		co.prepare(p.NumTiles())
	}
	bs := &bandState{emit: opt.Emit, front: opt.Seed, co: co, cols: p.NumCols}
	for b := 0; b < p.NumBands; b++ {
		bsp := beginBand(opt.Trace, &stats)
		r0, r1 := p.BandRows(b)
		ivs := cellIntervals(t, r0, r1)

		outcomes := make([]*tileOutcome, p.NumCols)
		errs := make([]error, p.NumCols)
		var failed atomic.Bool
		parallel.ForDynamic(tileWorkers, p.NumCols, 1, func(_, c int) {
			if failed.Load() {
				return
			}
			oc, err := solveTile(t, p, idx, b, c, r0, r1, ivs, bs.front, solve, subWorkers, opt.NoCull, co)
			if err != nil {
				errs[c] = err
				failed.Store(true)
				return
			}
			outcomes[c] = oc
		})
		for c, err := range errs {
			if err != nil {
				return nil, stats, fmt.Errorf("tile: band %d col %d: %w", b, c, err)
			}
		}
		mt0 := time.Now()
		if err := bs.finishBand(b, outcomes, &stats); err != nil {
			return nil, stats, err
		}
		mergeDur := time.Since(mt0)
		stats.MergeNS += mergeDur.Nanoseconds()
		bsp.end(b, &stats, mt0, mergeDur, 0, 0)
	}
	return bs.result(t.NumEdges(), &stats), stats, nil
}

// bandSpan brackets one depth band of a solve for tracing. On an unsampled
// trace every method is free; on a sampled one, end records the band span
// with its tile outcomes plus child spans for the band-barrier merge and
// (when paged) the band's page-in wait.
type bandSpan struct {
	tr        *obs.Trace
	tok       obs.SpanToken
	preSolved int
	preCulled int
	start     time.Time
}

// beginBand opens the band span (a no-op on an unsampled trace).
func beginBand(tr *obs.Trace, stats *Stats) bandSpan {
	bsp := bandSpan{tr: tr}
	if tr.Sampled() {
		bsp.tok = tr.StartSpan(obs.StageBand)
		bsp.preSolved, bsp.preCulled = stats.TilesSolved, stats.TilesCulled
		bsp.start = time.Now()
	}
	return bsp
}

// end closes the band span. mergeStart/mergeDur time the band barrier;
// waitNS and bytesPaged are the band's page-in deltas (zero when resident).
func (bsp bandSpan) end(b int, stats *Stats, mergeStart time.Time, mergeDur time.Duration, waitNS, bytesPaged int64) {
	if !bsp.tr.Sampled() {
		return
	}
	bsp.tr.AddSpan(bsp.tok, obs.StageMerge, mergeStart, mergeDur)
	if waitNS > 0 {
		bsp.tr.AddSpan(bsp.tok, obs.StagePageWait, bsp.start, time.Duration(waitNS),
			obs.AttrInt("bytes", bytesPaged))
	}
	bsp.tr.EndSpanAttrs(bsp.tok,
		obs.AttrInt("band", int64(b)),
		obs.AttrInt("tiles_solved", int64(stats.TilesSolved-bsp.preSolved)),
		obs.AttrInt("tiles_culled", int64(stats.TilesCulled-bsp.preCulled)),
	)
}

// bandState carries the cross-band accumulator of a tiled solve — the front
// envelope, the clipped output (or per-band emission), and the global
// counters. Solve and SolvePaged share it, so the band barrier behaves
// identically whether the heights are resident or paged.
type bandState struct {
	front     envelope.Profile // silhouette of all earlier bands
	out       []hsr.VisiblePiece
	counters  metrics.Counters
	crossings int64
	emit      func(p hsr.VisiblePiece) error
	co        *Coherence // verdict recording + reuse counters; may be nil
	cols      int        // tile columns per band, for verdict indexing
}

// finishBand is the band barrier: clip each tile's owned pieces against the
// front envelope (sequentially, in column order, for determinism), collect
// the band's own silhouette segments, flush the band when streaming, and
// merge the band silhouette into the accumulated front. With coherence
// active it also classifies every tile — culled, hidden (solved but every
// owned piece clipped away), or visible — and sums the reuse counters, all
// on this single sequential path so no atomics are needed.
func (bs *bandState) finishBand(b int, outcomes []*tileOutcome, stats *Stats) error {
	var bandSegs []geom.Seg2
	for c, oc := range outcomes {
		if oc.culled {
			stats.TilesCulled++
			bs.recordVerdict(b, c, VerdictCulled, oc)
			continue
		}
		stats.TilesSolved++
		bs.counters.Add(oc.counters)
		bs.crossings += oc.crossings
		stats.LocalPieces += len(oc.pieces)
		before := len(bs.out)
		for _, pc := range oc.pieces {
			n := int64(0)
			bs.out, n = appendClipped(bs.out, pc, bs.front)
			bs.crossings += n
			if pc.Span.X2-pc.Span.X1 > geom.Eps {
				bandSegs = append(bandSegs, geom.Seg2{
					A: geom.Pt2{X: pc.Span.X1, Z: pc.Span.Z1},
					B: geom.Pt2{X: pc.Span.X2, Z: pc.Span.Z2},
				})
			}
		}
		if len(bs.out) == before {
			bs.recordVerdict(b, c, VerdictHidden, oc)
		} else {
			bs.recordVerdict(b, c, VerdictVisible, oc)
		}
	}
	if bs.emit != nil {
		// Streaming: flush the band's clipped pieces in canonical order
		// and reuse the buffer, so at most one band of pieces is live.
		sortVisible(bs.out)
		for _, pc := range bs.out {
			if err := bs.emit(pc); err != nil {
				return err
			}
		}
		bs.out = bs.out[:0]
	}
	if len(bandSegs) > 0 {
		// The unclipped band silhouette: locally hidden parts of the band
		// are below some locally visible piece, so the envelope of the
		// band's local pieces equals the envelope of all its edges; and
		// globally hidden pieces lie below the accumulated front profile,
		// so merging them is harmless. Front is passed first: earlier
		// bands win ties, matching the depth order of a monolithic solve.
		bs.front = envelope.Merge(bs.front, envelope.BuildUpperEnvelope(bandSegs, envelope.NoEdge))
	}
	return nil
}

// recordVerdict stores tile (b, c)'s verdict and sums the reuse counters.
func (bs *bandState) recordVerdict(b, c int, v Verdict, oc *tileOutcome) {
	co := bs.co
	if co == nil {
		return
	}
	co.Out[b*bs.cols+c] = v
	switch {
	case oc.reused:
		co.Stats.TilesReused++
	case oc.culled && oc.verifyFailed:
		co.Stats.TilesReverified++
		co.Stats.VerifyFailures++
	case oc.culled:
	default:
		co.Stats.TilesResolved++
		if oc.verifyFailed {
			co.Stats.VerifyFailures++
		}
	}
}

// result finalizes the accumulated scene after the last band.
func (bs *bandState) result(numEdges int, stats *Stats) *hsr.Result {
	stats.EnvelopeSize = bs.front.Size()
	if bs.co != nil {
		bs.co.Final = bs.front
	}
	out := bs.out
	if bs.emit != nil {
		out = nil
	} else {
		sortVisible(out)
	}
	return &hsr.Result{
		N:         numEdges,
		Pieces:    out,
		Crossings: bs.crossings,
		Counters:  bs.counters,
	}
}

// sortVisible orders pieces canonically by (Edge, X1, Z1) — the order every
// materialized result uses, and the within-band order of streamed bands.
func sortVisible(ps []hsr.VisiblePiece) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		if a.Span.X1 != b.Span.X1 {
			return a.Span.X1 < b.Span.X1
		}
		return a.Span.Z1 < b.Span.Z1
	})
}

// solveTile runs one tile: verify-then-reuse (when coherent), cull check,
// sub-terrain extraction, local solve, and translation of the owned pieces
// to global edge ids. front is read-only here (it is only rewritten between
// bands, after the band barrier).
func solveTile(t *terrain.Terrain, p *Partition, idx *EdgeIndex, b, c, r0, r1 int, ivs [][]yiv, front envelope.Profile, solve SolveFunc, workers int, noCull bool, co *Coherence) (*tileOutcome, error) {
	_, _, c0, c1 := p.TileCells(b, c)
	verifyFailed := false
	if co != nil && !noCull && co.reusable(b*p.NumCols+c) {
		// The previous frame culled or hid this tile; if the conservative
		// cone check confirms the front still covers its world box from the
		// new eye, skip even the extent scan. A cone pass implies the exact
		// check below passes too, so the outcome is identical either way.
		if lo, hi, z, ok := co.Bounds[b*p.NumCols+c].Cone(co.Eye, co.MinDepth); ok && front.CoversAbove(lo, hi, z) {
			return &tileOutcome{culled: true, reused: true}, nil
		}
		verifyFailed = true
	}
	owned, maxZ := ownedExtent(t, r0, r1, c0, c1)
	if !noCull && front.CoversAbove(owned.lo, owned.hi, maxZ) {
		// Everything the tile could contribute lies on or below the
		// silhouette of the terrain in front of it: skip the solve entirely.
		return &tileOutcome{culled: true, verifyFailed: verifyFailed}, nil
	}
	sub, err := extract(t, p, idx, b, c, r0, r1, haloRanges(ivs, owned))
	if err != nil {
		return nil, err
	}
	res, err := solve(sub.t, workers)
	if err != nil {
		return nil, err
	}
	oc := &tileOutcome{counters: res.Counters, crossings: res.Crossings, verifyFailed: verifyFailed}
	for _, pc := range res.Pieces {
		if !sub.owned[pc.Edge] {
			continue // a halo edge: some other tile owns and reports it
		}
		pc.Edge = sub.globalEdge[pc.Edge]
		oc.pieces = append(oc.pieces, pc)
	}
	return oc, nil
}

// appendClipped appends the portions of piece pc that lie strictly above the
// profile to dst, returning the extended slice and the number of crossings
// discovered. Ties count as occluded, matching envelope.ClipAbove and the
// front-wins convention of the monolithic algorithms.
func appendClipped(dst []hsr.VisiblePiece, pc hsr.VisiblePiece, front envelope.Profile) ([]hsr.VisiblePiece, int64) {
	if len(front) == 0 {
		return append(dst, pc), 0
	}
	sp := pc.Span
	if sp.X2-sp.X1 <= geom.Eps {
		// A vertical-image piece: compare its height range against the
		// profile value at its column (same rules as the solvers' clipOne).
		z, covered := front.Eval(sp.X1)
		switch {
		case !covered:
			return append(dst, pc), 0
		case sp.Z2 > z+geom.Eps:
			var n int64
			if sp.Z1 < z {
				n = 1
				sp.Z1 = z
			}
			pc.Span = sp
			return append(dst, pc), n
		default:
			return dst, 0
		}
	}
	// ClipAbove walks the profile linearly from its first piece; start it at
	// the first piece that can overlap the span (binary search) so a band
	// merge costs O(pieces · log |front|) rather than O(pieces · |front|).
	i := sort.Search(len(front), func(i int) bool { return front[i].X2 > sp.X1+geom.Eps })
	res := envelope.ClipAbove(geom.Seg2{
		A: geom.Pt2{X: sp.X1, Z: sp.Z1},
		B: geom.Pt2{X: sp.X2, Z: sp.Z2},
	}, front[i:])
	for _, s := range res.Spans {
		dst = append(dst, hsr.VisiblePiece{Edge: pc.Edge, Span: s})
	}
	return dst, int64(res.Crossings)
}
