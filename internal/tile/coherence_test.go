package tile

import (
	"math"
	"testing"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/hsr"
	"terrainhsr/internal/workload"
)

// zeroTimings clears the wall-clock and paging-meter fields of a Stats so
// the deterministic effort counters can be compared exactly.
func zeroTimings(s Stats) Stats {
	s.MergeNS, s.PageWaitNS, s.BytesPaged, s.PageIns = 0, 0, 0, 0
	return s
}

// grazingEyes is a low flyover across a size x size terrain: low enough
// that the front silhouette hides many tiles, so cone checks and verdict
// reuse have work to do.
func grazingEyes(size, frames int, z0, z1 float64) []geom.Pt3 {
	ext := float64(size)
	return geom.LinePts(
		geom.Pt3{X: -0.7 * ext, Y: 0.5*ext + 0.37, Z: z0},
		geom.Pt3{X: -0.4 * ext, Y: 0.5*ext + 0.37, Z: z1},
		frames)
}

// TestConeCheckSoundness is the identity-preserving direction of the cone
// check: whenever Cone passes against a front envelope, the exact per-tile
// cull check (over the transformed extent) must pass too. It walks real
// flyover frames, compares both checks against the true solve front at
// every band, and fails on any tile the cone would cull but the exact check
// keeps. It also demands the cone confirms a decent share of the exact
// culls — a sound check that never passes would be useless.
func TestConeCheckSoundness(t *testing.T) {
	size := 128
	tr := genGrid(t, workload.Massive, size, size, 17)
	p, err := NewPartition(size, size, Spec{TileRows: 16, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	boxes, err := TileBounds(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewEdgeIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	exactTotal, coneTotal := 0, 0
	for f, eye := range grazingEyes(size, 4, 11, 9) {
		pt := geom.PerspectiveTransform{Eye: eye, MinDepth: 1}
		tt, err := tr.TransformShared(pt.Apply)
		if err != nil {
			t.Fatal(err)
		}
		bs := &bandState{}
		var stats Stats
		for b := 0; b < p.NumBands; b++ {
			r0, r1 := p.BandRows(b)
			ivs := cellIntervals(tt, r0, r1)
			outcomes := make([]*tileOutcome, p.NumCols)
			for c := 0; c < p.NumCols; c++ {
				_, _, c0, c1 := p.TileCells(b, c)
				owned, maxZ := ownedExtent(tt, r0, r1, c0, c1)
				exact := bs.front.CoversAbove(owned.lo, owned.hi, maxZ)
				lo, hi, zc, ok := boxes[b*p.NumCols+c].Cone(eye, 1)
				cone := ok && bs.front.CoversAbove(lo, hi, zc)
				if cone && !exact {
					t.Fatalf("frame %d band %d col %d: cone check culls a tile the exact check keeps", f, b, c)
				}
				if exact {
					exactTotal++
					if cone {
						coneTotal++
					}
					outcomes[c] = &tileOutcome{culled: true}
					continue
				}
				oc, err := solveTile(tt, p, idx, b, c, r0, r1, ivs, bs.front, seqSolve, 1, false, nil)
				if err != nil {
					t.Fatal(err)
				}
				outcomes[c] = oc
			}
			if err := bs.finishBand(b, outcomes, &stats); err != nil {
				t.Fatal(err)
			}
		}
	}
	if exactTotal == 0 {
		t.Fatal("grazing flyover culled no tiles; workload too easy to test anything")
	}
	if coneTotal*2 < exactTotal {
		t.Fatalf("cone confirmed only %d of %d exact culls; too conservative to be useful", coneTotal, exactTotal)
	}
}

// TestSeedNilIsNoOp pins that a nil seed leaves the solve untouched:
// byte-identical pieces and stats with and without the field set.
func TestSeedNilIsNoOp(t *testing.T) {
	tr := genGrid(t, workload.Massive, 40, 40, 3)
	p, err := NewPartition(40, 40, Spec{TileRows: 10, TileCols: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, sa, err := Solve(tr, p, nil, seqSolve, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Solve(tr, p, nil, seqSolve, Options{Workers: 1, Seed: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pieces) != len(b.Pieces) || zeroTimings(sa) != zeroTimings(sb) {
		t.Fatalf("nil seed changed the solve: %d vs %d pieces, %+v vs %+v", len(a.Pieces), len(b.Pieces), sa, sb)
	}
	for i := range a.Pieces {
		if a.Pieces[i] != b.Pieces[i] {
			t.Fatalf("piece %d differs under nil seed", i)
		}
	}
}

// TestSeedClipsLikeFront checks the seed semantics: solving with a seed
// envelope equals solving without it and then clipping every piece against
// the seed — pointwise, sampled along each piece (the envelope's byte
// representation is not merge-order-associative, so byte comparison would
// overconstrain; visibility is what the seed contract promises).
func TestSeedClipsLikeFront(t *testing.T) {
	tr := genGrid(t, workload.Massive, 40, 40, 5)
	p, err := NewPartition(40, 40, Spec{TileRows: 10, TileCols: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A seed profile covering the left half of the image at a height that
	// hides part of the terrain.
	seed := envelope.BuildUpperEnvelope([]geom.Seg2{
		{A: geom.Pt2{X: -100, Z: 3}, B: geom.Pt2{X: 20, Z: 3}},
	}, envelope.NoEdge)

	plain, _, err := Solve(tr, p, nil, seqSolve, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seeded, sst, err := Solve(tr, p, nil, seqSolve, Options{Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: clip the plain result's pieces against the seed.
	var want []hsr.VisiblePiece
	for _, pc := range plain.Pieces {
		want, _ = appendClipped(want, pc, seed)
	}
	sortVisible(want)
	if len(want) != len(seeded.Pieces) {
		t.Fatalf("seeded solve has %d pieces, clip-after reference %d", len(seeded.Pieces), len(want))
	}
	for i := range want {
		a, b := want[i], seeded.Pieces[i]
		if a.Edge != b.Edge {
			t.Fatalf("piece %d: edge %d vs %d", i, a.Edge, b.Edge)
		}
		if math.Abs(a.Span.X1-b.Span.X1) > 1e-9 || math.Abs(a.Span.X2-b.Span.X2) > 1e-9 ||
			math.Abs(a.Span.Z1-b.Span.Z1) > 1e-9 || math.Abs(a.Span.Z2-b.Span.Z2) > 1e-9 {
			t.Fatalf("piece %d: %+v vs %+v", i, a.Span, b.Span)
		}
	}
	if sst.EnvelopeSize == 0 {
		t.Fatal("seeded solve reports empty final envelope")
	}

	// A seed covering everything suppresses all output and all solving.
	total := envelope.BuildUpperEnvelope([]geom.Seg2{
		{A: geom.Pt2{X: -1e6, Z: 1e6}, B: geom.Pt2{X: 1e6, Z: 1e6}},
	}, envelope.NoEdge)
	none, nst, err := Solve(tr, p, nil, seqSolve, Options{Workers: 1, Seed: total})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Pieces) != 0 || nst.TilesSolved != 0 {
		t.Fatalf("total seed left %d pieces, %d solved tiles", len(none.Pieces), nst.TilesSolved)
	}
}

// TestCoherentSolveIdenticalAndVerdictsRecorded runs a flyover through
// Solve with Coherence and checks (a) byte-identity against the plain solve
// at every frame, (b) verdicts recorded for every tile, and (c) counters
// consistent: reused + reverified + resolved + plain culls account for all
// tiles, and reuse happens.
func TestCoherentSolveIdenticalAndVerdictsRecorded(t *testing.T) {
	size := 96
	tr := genGrid(t, workload.Massive, size, size, 17)
	p, err := NewPartition(size, size, Spec{TileRows: 16, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewEdgeIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	boxes, err := TileBounds(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	var prev []Verdict
	totalReused := 0
	for f, eye := range grazingEyes(size, 4, 9, 7) {
		pt := geom.PerspectiveTransform{Eye: eye, MinDepth: 1}
		tt, err := tr.TransformShared(pt.Apply)
		if err != nil {
			t.Fatal(err)
		}
		plain, pst, err := Solve(tt, p, idx, seqSolve, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		co := &Coherence{Bounds: boxes, Eye: eye, MinDepth: 1, Prev: prev}
		coh, cst, err := Solve(tt, p, idx, seqSolve, Options{Workers: 1, Coherence: co})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Pieces) != len(coh.Pieces) {
			t.Fatalf("frame %d: %d vs %d pieces", f, len(plain.Pieces), len(coh.Pieces))
		}
		for i := range plain.Pieces {
			if plain.Pieces[i] != coh.Pieces[i] {
				t.Fatalf("frame %d piece %d: %+v vs %+v", f, i, plain.Pieces[i], coh.Pieces[i])
			}
		}
		if zeroTimings(pst) != zeroTimings(cst) {
			t.Fatalf("frame %d: stats diverge: %+v vs %+v", f, pst, cst)
		}
		for ti, v := range co.Out {
			if v == VerdictNone {
				t.Fatalf("frame %d: tile %d has no verdict", f, ti)
			}
		}
		if co.Stats.TilesResolved != cst.TilesSolved {
			t.Fatalf("frame %d: %d resolved vs %d solved", f, co.Stats.TilesResolved, cst.TilesSolved)
		}
		if got := co.Final.Size(); got != cst.EnvelopeSize {
			t.Fatalf("frame %d: Final has %d pieces, stats say %d", f, got, cst.EnvelopeSize)
		}
		if f > 0 && co.Stats.TilesReused+co.Stats.VerifyFailures == 0 {
			t.Fatalf("frame %d: no verification attempted despite prior verdicts", f)
		}
		totalReused += co.Stats.TilesReused
		prev = co.Out
	}
	if totalReused == 0 {
		t.Fatal("no tile verdict was ever reused over the grazing flyover")
	}
}

// TestPagedCoherentSolveIdentical mirrors the coherent-identity check on
// the paged path: SolvePaged with Coherence and bounds from
// PagedGrid.TileBounds stays byte-identical to the plain paged solve.
func TestPagedCoherentSolveIdentical(t *testing.T) {
	rows, cols := 48, 48
	p, err := NewPartition(rows, cols, Spec{TileRows: 16, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	base := PagedGrid{Rows: rows, Cols: cols, Cell: 1,
		Src: newMemSource(rows+1, cols+1, testHeights)}
	boxes := base.TileBounds(p)
	for _, wb := range boxes {
		if !wb.Valid {
			t.Fatal("memSource bounds every rectangle; TileBounds dropped one")
		}
	}

	var prev []Verdict
	reused := 0
	eyes := []geom.Pt3{
		{X: -20, Y: 24.3, Z: 12},
		{X: -18, Y: 24.3, Z: 11},
		{X: -16, Y: 24.3, Z: 10},
	}
	for f, eye := range eyes {
		view := &geom.PerspectiveTransform{Eye: eye, MinDepth: 1}
		g := base
		g.View = view
		plain, pst, err := SolvePaged(&g, p, seqSolve, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		co := &Coherence{Bounds: boxes, Eye: eye, MinDepth: 1, Prev: prev}
		g2 := base
		g2.View = view
		coh, cst, err := SolvePaged(&g2, p, seqSolve, Options{Workers: 1, Coherence: co})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Pieces) != len(coh.Pieces) || zeroTimings(pst) != zeroTimings(cst) {
			t.Fatalf("frame %d: paged coherent solve diverges (%d vs %d pieces)", f, len(plain.Pieces), len(coh.Pieces))
		}
		for i := range plain.Pieces {
			if plain.Pieces[i] != coh.Pieces[i] {
				t.Fatalf("frame %d piece %d differs", f, i)
			}
		}
		reused += co.Stats.TilesReused
		prev = co.Out
	}
	if reused == 0 {
		t.Fatal("paged flyover reused no verdicts")
	}
}
