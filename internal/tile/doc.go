// Package tile partitions a grid terrain into overlapping row×col tiles and
// computes the visible scene tile by tile, so that peak memory scales with a
// tile band instead of the whole terrain. It is the massive-terrain layer on
// top of the paper's algorithm (Gupta–Sen, IPPS 1998): each tile is solved
// by an ordinary hidden-surface solver supplied as a callback, and the
// per-tile answers are merged into a scene equivalent to the monolithic
// solve.
//
// The decomposition follows the I/O-efficient visibility literature
// (Haverkort–Toma's tiled viewsheds over massive grids) adapted to the
// object-space setting of this repository:
//
//   - Bands. Tiles are grouped into bands of cell rows. Rows run along the
//     viewing (depth) axis, so bands are totally ordered front to back: any
//     occluder of a point lies on the sight segment from the viewer, at
//     strictly smaller world x, hence in the same band or an earlier one —
//     under the canonical orthographic view and under every perspective
//     transform the library applies (both keep world x monotone along sight
//     lines).
//
//   - Halos. Within a band, a tile's sub-terrain is its owned cell
//     rectangle plus every band cell whose image-x interval intersects the
//     rectangle's. Same-band occluders of an owned point share its image
//     column, so they live in halo cells; including them makes the local
//     solve exact without inter-tile communication. Halo edges act as
//     occluders only — each global edge is owned by exactly one tile (the
//     tile owning its lowest-numbered incident triangle), which is the tile
//     that reports its pieces, so seam edges are never emitted twice.
//
//   - Silhouette merge. Bands are merged front to back through an
//     accumulated silhouette envelope (package envelope): a band's surviving
//     pieces are the local pieces clipped above the envelope of all earlier
//     bands, and the band's own unclipped silhouette is then merged into the
//     accumulator. In the spirit of Erickson's finite-resolution
//     hidden-surface removal, a tile whose bounding box lies entirely below
//     the accumulated envelope is culled without being solved.
//
// The accumulated envelope is exactly the prefix profile P_i of the paper's
// phase 2, coarsened from per-edge granularity to per-band granularity; the
// equivalence argument is spelled out in ALGORITHM.md.
package tile
