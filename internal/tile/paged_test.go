package tile

import (
	"math"
	"testing"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/hsr"
	"terrainhsr/internal/terrain"
	"terrainhsr/internal/workload"
)

// memSource serves heights from a resident array and records which samples
// were ever requested — the test stand-in for store.Pager.
type memSource struct {
	rows, cols int // samples
	h          []float64
	noBound    bool   // make MaxHeight claim ignorance
	touched    []bool // samples some Rect has covered
	retired    int
}

func newMemSource(rows, cols int, h func(i, j int) float64) *memSource {
	m := &memSource{rows: rows, cols: cols,
		h:       make([]float64, rows*cols),
		touched: make([]bool, rows*cols)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.h[i*cols+j] = h(i, j)
		}
	}
	return m
}

func (m *memSource) Rect(r0, r1, c0, c1 int) (func(i, j int) float64, error) {
	for i := r0; i <= r1; i++ {
		for j := c0; j <= c1; j++ {
			m.touched[i*m.cols+j] = true
		}
	}
	return func(i, j int) float64 { return m.h[i*m.cols+j] }, nil
}

func (m *memSource) Retire(row int) {
	if row > m.retired {
		m.retired = row
	}
}

func (m *memSource) MaxHeight(r0, r1, c0, c1 int) (float64, bool) {
	if m.noBound {
		return 0, false
	}
	mx := math.Inf(-1)
	for i := r0; i <= r1; i++ {
		for j := c0; j <= c1; j++ {
			if v := m.h[i*m.cols+j]; v > mx {
				mx = v
			}
		}
	}
	return mx, true
}

func (m *memSource) touchedSamples() int {
	n := 0
	for _, t := range m.touched {
		if t {
			n++
		}
	}
	return n
}

// testHeights is a deterministic rugged surface with a tall ridge near the
// front, so silhouette culling fires on the back bands.
func testHeights(i, j int) float64 {
	if i == 3 {
		return 40
	}
	return 4*math.Sin(0.8*float64(i))*math.Cos(0.5*float64(j)) + 0.13*float64(i) - 0.07*float64(j)
}

// residentTerrain builds the in-core equivalent of a PagedGrid: grid build,
// then the plan shear, exactly as workload generation and dem.ToTerrain do.
func residentTerrain(t *testing.T, rows, cols int, shear float64, h func(i, j int) float64) *terrain.Terrain {
	t.Helper()
	tr, err := terrain.Grid{Rows: rows, Cols: cols, Dx: 1, Dy: 1, H: h}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if shear > 0 {
		tr, err = tr.Transform(func(q geom.Pt3) (geom.Pt3, error) {
			q.Y += shear * q.X
			return q, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestGridEdgeFormulaMatchesIndex(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 5}, {5, 1}, {2, 2}, {4, 7}, {7, 4}, {8, 8}}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		tr := genGrid(t, workload.Fractal, rows, cols, 3)
		idx, err := NewEdgeIndex(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(tr.Edges), terrain.EdgeCountForGrid(rows, cols); got != want {
			t.Fatalf("%dx%d: %d edges, formula domain expects %d", rows, cols, got, want)
		}
		for ge, ed := range tr.Edges {
			id, oi, oj, err := gridEdge(cols, cols+1, ed.V0, ed.V1)
			if err != nil {
				t.Fatalf("%dx%d edge %d (%d-%d): %v", rows, cols, ge, ed.V0, ed.V1, err)
			}
			if int(id) != ge {
				t.Fatalf("%dx%d edge %d-%d: formula id %d, index id %d", rows, cols, ed.V0, ed.V1, id, ge)
			}
			wi, wj := idx.Owner(int32(ge))
			if oi != wi || oj != wj {
				t.Fatalf("%dx%d edge %d: formula owner (%d,%d), index owner (%d,%d)", rows, cols, ge, oi, oj, wi, wj)
			}
		}
	}
}

func TestSolvePagedMatchesSolveCanonical(t *testing.T) {
	const rows, cols, shear = 32, 32, 0.07
	tr := residentTerrain(t, rows, cols, shear, testHeights)
	p, err := NewPartition(rows, cols, Spec{TileRows: 8, TileCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		want, wantSt, err := Solve(tr, p, nil, seqSolve, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		src := newMemSource(rows+1, cols+1, testHeights)
		g := &PagedGrid{Rows: rows, Cols: cols, Cell: 1, Shear: shear, Src: src}
		got, gotSt, err := SolvePaged(g, p, seqSolve, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N || len(got.Pieces) != len(want.Pieces) {
			t.Fatalf("w=%d: paged N=%d pieces=%d, resident N=%d pieces=%d",
				workers, got.N, len(got.Pieces), want.N, len(want.Pieces))
		}
		for i := range got.Pieces {
			if got.Pieces[i] != want.Pieces[i] {
				t.Fatalf("w=%d: piece %d differs: paged %+v resident %+v",
					workers, i, got.Pieces[i], want.Pieces[i])
			}
		}
		// With no perspective the paged cull bound is exact, so even the
		// cull decisions coincide.
		if gotSt.TilesCulled != wantSt.TilesCulled || gotSt.TilesSolved != wantSt.TilesSolved {
			t.Fatalf("w=%d: paged stats %+v, resident stats %+v", workers, gotSt, wantSt)
		}
		if src.retired != rows {
			t.Fatalf("w=%d: final retire row %d, want %d", workers, src.retired, rows)
		}
	}
}

func TestSolvePagedMatchesSolvePerspective(t *testing.T) {
	const rows, cols, shear = 30, 28, 0.07
	view := &geom.PerspectiveTransform{Eye: geom.Pt3{X: -3.5, Y: 11, Z: 9}}
	base := residentTerrain(t, rows, cols, shear, testHeights)
	tr, err := base.TransformShared(view.Apply)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(rows, cols, Spec{TileRows: 7, TileCols: 9})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Solve(tr, p, nil, seqSolve, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := newMemSource(rows+1, cols+1, testHeights)
	g := &PagedGrid{Rows: rows, Cols: cols, Cell: 1, Shear: shear, View: view, Src: src}
	got, _, err := SolvePaged(g, p, seqSolve, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || len(got.Pieces) != len(want.Pieces) {
		t.Fatalf("paged N=%d pieces=%d, resident N=%d pieces=%d",
			got.N, len(got.Pieces), want.N, len(want.Pieces))
	}
	for i := range got.Pieces {
		if got.Pieces[i] != want.Pieces[i] {
			t.Fatalf("piece %d differs: paged %+v resident %+v", i, got.Pieces[i], want.Pieces[i])
		}
	}
}

func TestSolvePagedNoBoundStillMatches(t *testing.T) {
	// A source that cannot bound heights disables culling but nothing else.
	const rows, cols = 24, 24
	tr := residentTerrain(t, rows, cols, 0, testHeights)
	p, err := NewPartition(rows, cols, Spec{TileRows: 6, TileCols: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Solve(tr, p, nil, seqSolve, Options{NoCull: true})
	if err != nil {
		t.Fatal(err)
	}
	src := newMemSource(rows+1, cols+1, testHeights)
	src.noBound = true
	g := &PagedGrid{Rows: rows, Cols: cols, Cell: 1, Src: src}
	got, st, err := SolvePaged(g, p, seqSolve, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesCulled != 0 {
		t.Fatalf("culled %d tiles with no height bound", st.TilesCulled)
	}
	if len(got.Pieces) != len(want.Pieces) {
		t.Fatalf("piece count %d vs %d", len(got.Pieces), len(want.Pieces))
	}
	for i := range got.Pieces {
		if got.Pieces[i] != want.Pieces[i] {
			t.Fatalf("piece %d differs", i)
		}
	}
}

func TestSolvePagedCulledTilesNeverRead(t *testing.T) {
	const rows, cols = 32, 32
	src := newMemSource(rows+1, cols+1, testHeights)
	g := &PagedGrid{Rows: rows, Cols: cols, Cell: 1, Src: src}
	p, err := NewPartition(rows, cols, Spec{TileRows: 8, TileCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := SolvePaged(g, p, seqSolve, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesCulled == 0 {
		t.Fatal("expected the front ridge to cull back tiles")
	}
	total := (rows + 1) * (cols + 1)
	if n := src.touchedSamples(); n >= total {
		t.Fatalf("all %d samples were read despite %d culled tiles", total, st.TilesCulled)
	}
}

func TestSolvePagedStreamsLikeSolve(t *testing.T) {
	const rows, cols = 24, 24
	tr := residentTerrain(t, rows, cols, 0.07, testHeights)
	p, err := NewPartition(rows, cols, Spec{TileRows: 6, TileCols: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Solve(tr, p, nil, seqSolve, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := newMemSource(rows+1, cols+1, testHeights)
	g := &PagedGrid{Rows: rows, Cols: cols, Cell: 1, Shear: 0.07, Src: src}
	var streamed []int32
	res, _, err := SolvePaged(g, p, seqSolve, Options{Emit: func(pc hsr.VisiblePiece) error {
		streamed = append(streamed, pc.Edge)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pieces != nil {
		t.Fatal("streaming solve still materialized pieces")
	}
	if len(streamed) != len(want.Pieces) {
		t.Fatalf("streamed %d pieces, materialized %d", len(streamed), len(want.Pieces))
	}
}
