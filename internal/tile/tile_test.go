package tile

import (
	"sort"
	"testing"

	"terrainhsr/internal/hsr"
	"terrainhsr/internal/terrain"
	"terrainhsr/internal/workload"
)

func genGrid(t *testing.T, kind workload.Kind, rows, cols int, seed int64) *terrain.Terrain {
	t.Helper()
	tr, err := workload.Generate(workload.Params{Kind: kind, Rows: rows, Cols: cols, Seed: seed, Amplitude: 6})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// seqSolve is the trusted tile-solver callback for the tests.
func seqSolve(sub *terrain.Terrain, workers int) (*hsr.Result, error) {
	_ = workers
	prep, err := hsr.Prepare(sub)
	if err != nil {
		return nil, err
	}
	return prep.Sequential()
}

func TestPartitionShapes(t *testing.T) {
	cases := []struct {
		rows, cols int
		spec       Spec
		bands, tc  int
	}{
		{40, 40, Spec{TileRows: 10, TileCols: 10}, 4, 4},
		{40, 40, Spec{TileRows: 16, TileCols: 16}, 3, 3},
		{40, 40, Spec{TileRows: 100, TileCols: 1}, 1, 40},
		{40, 40, Spec{}, 3, 3}, // auto: max(16, ceil(40/4)=10) = 16 cells/tile
		{512, 512, Spec{}, 4, 4},
		{1, 1, Spec{}, 1, 1},
	}
	for _, c := range cases {
		p, err := NewPartition(c.rows, c.cols, c.spec)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if p.NumBands != c.bands || p.NumCols != c.tc {
			t.Errorf("%dx%d %+v: got %dx%d tiles, want %dx%d",
				c.rows, c.cols, c.spec, p.NumBands, p.NumCols, c.bands, c.tc)
		}
		// Tiles must cover every cell exactly once.
		seen := make([]bool, c.rows*c.cols)
		for b := 0; b < p.NumBands; b++ {
			for cc := 0; cc < p.NumCols; cc++ {
				r0, r1, c0, c1 := p.TileCells(b, cc)
				for i := r0; i < r1; i++ {
					for j := c0; j < c1; j++ {
						if seen[i*c.cols+j] {
							t.Fatalf("cell (%d,%d) owned twice", i, j)
						}
						seen[i*c.cols+j] = true
					}
				}
			}
		}
		for cell, ok := range seen {
			if !ok {
				t.Fatalf("cell %d unowned", cell)
			}
		}
	}
	if _, err := NewPartition(0, 4, Spec{}); err == nil {
		t.Fatal("expected error for empty grid")
	}
	if _, err := NewPartition(4, 4, Spec{TileRows: -1}); err == nil {
		t.Fatal("expected error for negative tile size")
	}
}

// assertNoOverlap fails if any edge's pieces overlap each other — the seam
// dedup guarantee: an edge shared by two tiles must be reported exactly once.
func assertNoOverlap(t *testing.T, pieces []hsr.VisiblePiece) {
	t.Helper()
	byEdge := make(map[int32][]hsr.VisiblePiece)
	for _, p := range pieces {
		byEdge[p.Edge] = append(byEdge[p.Edge], p)
	}
	const tol = 1e-9
	for e, ps := range byEdge {
		vertical := ps[0].Span.X2-ps[0].Span.X1 <= tol
		sort.Slice(ps, func(i, j int) bool {
			if vertical {
				return ps[i].Span.Z1 < ps[j].Span.Z1
			}
			return ps[i].Span.X1 < ps[j].Span.X1
		})
		for i := 1; i < len(ps); i++ {
			if vertical {
				if ps[i].Span.Z1 < ps[i-1].Span.Z2-tol {
					t.Fatalf("edge %d: vertical pieces overlap: %+v then %+v", e, ps[i-1].Span, ps[i].Span)
				}
			} else if ps[i].Span.X1 < ps[i-1].Span.X2-tol {
				t.Fatalf("edge %d: pieces overlap: %+v then %+v", e, ps[i-1].Span, ps[i].Span)
			}
		}
	}
}

func TestSolveMatchesMonolithic(t *testing.T) {
	kinds := []workload.Kind{workload.Fractal, workload.Ridge, workload.Steps, workload.TiltedDown}
	specs := []Spec{
		{TileRows: 7, TileCols: 9}, // uneven tiles, remainders on both axes
		{TileRows: 10, TileCols: 30},
		{TileRows: 30, TileCols: 8},
	}
	for _, kind := range kinds {
		tr := genGrid(t, kind, 30, 30, 5)
		prep, err := hsr.Prepare(tr)
		if err != nil {
			t.Fatal(err)
		}
		mono, err := prep.Sequential()
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			for _, workers := range []int{1, 4} {
				p, err := NewPartition(tr.GridRows, tr.GridCols, spec)
				if err != nil {
					t.Fatal(err)
				}
				res, st, err := Solve(tr, p, nil, seqSolve, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s %+v w=%d: %v", kind, spec, workers, err)
				}
				if err := hsr.Equivalent(mono, res, 1e-7, 1e-5); err != nil {
					t.Fatalf("%s %+v w=%d: tiled differs from monolithic: %v", kind, spec, workers, err)
				}
				assertNoOverlap(t, res.Pieces)
				if st.TilesSolved+st.TilesCulled != st.Tiles {
					t.Fatalf("%s %+v: stats don't add up: %+v", kind, spec, st)
				}
			}
		}
	}
}

func TestCullingNeverChangesResult(t *testing.T) {
	// Ridge puts a tall wall in front: back tiles are culled (asserted), and
	// the culled result must match the uncullled one piece for piece.
	tr := genGrid(t, workload.Ridge, 32, 32, 9)
	p, err := NewPartition(32, 32, Spec{TileRows: 8, TileCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	culled, st, err := Solve(tr, p, nil, seqSolve, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesCulled == 0 {
		t.Fatal("expected the ridge to cull some back tiles")
	}
	full, st2, err := Solve(tr, p, nil, seqSolve, Options{NoCull: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.TilesCulled != 0 {
		t.Fatalf("NoCull still culled %d tiles", st2.TilesCulled)
	}
	if len(culled.Pieces) != len(full.Pieces) {
		t.Fatalf("culling changed piece count: %d vs %d", len(culled.Pieces), len(full.Pieces))
	}
	for i := range culled.Pieces {
		if culled.Pieces[i] != full.Pieces[i] {
			t.Fatalf("culling changed piece %d: %+v vs %+v", i, culled.Pieces[i], full.Pieces[i])
		}
	}
}

func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	tr := genGrid(t, workload.Fractal, 24, 24, 2)
	p, err := NewPartition(24, 24, Spec{TileRows: 6, TileCols: 6})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := Solve(tr, p, nil, seqSolve, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		res, _, err := Solve(tr, p, nil, seqSolve, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pieces) != len(base.Pieces) {
			t.Fatalf("w=%d: piece count %d vs %d", workers, len(res.Pieces), len(base.Pieces))
		}
		for i := range res.Pieces {
			if res.Pieces[i] != base.Pieces[i] {
				t.Fatalf("w=%d: piece %d differs: %+v vs %+v", workers, i, res.Pieces[i], base.Pieces[i])
			}
		}
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	tr := genGrid(t, workload.Fractal, 8, 8, 1)
	p, err := NewPartition(10, 10, Spec{}) // mismatched dims
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(tr, p, nil, seqSolve, Options{}); err == nil {
		t.Fatal("expected error for partition/terrain mismatch")
	}
	nogrid := &terrain.Terrain{Verts: tr.Verts, Tris: tr.Tris, Edges: tr.Edges}
	p2, _ := NewPartition(8, 8, Spec{})
	if _, _, err := Solve(nogrid, p2, nil, seqSolve, Options{}); err == nil {
		t.Fatal("expected error for non-grid terrain")
	}
	if _, err := NewEdgeIndex(nogrid); err == nil {
		t.Fatal("expected NewEdgeIndex error for non-grid terrain")
	}
}
