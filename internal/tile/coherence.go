package tile

import (
	"fmt"
	"math"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/terrain"
)

// This file is the frame-coherence layer of the tiled solver: per-tile
// visibility verdicts recorded at the band barrier, frame-invariant world
// bounding boxes, and the O(1) conservative cone check that decides — for a
// new eye — whether a tile's previous-frame verdict still holds.
//
// The reuse contract is strict: a cone pass must imply that the exact
// per-tile cull check (front.CoversAbove over the tile's transformed extent)
// would also pass, so a reused tile takes exactly the branch the independent
// solve takes and the output stays byte-identical. The implication holds in
// floating point because every bound is evaluated through monotone
// operations: subtraction, and division by a positive depth, are monotone in
// each argument under round-to-nearest, so the extreme transformed
// coordinates of a world box are attained at its corners; and CoversAbove is
// monotone (an envelope covering a wider interval at a higher height covers
// every sub-interval at any lower height). Tiles that fail the cone check
// simply fall back to the exact check and, if that fails too, to a clean
// solve — a verification miss can only cost time, never change output.
//
// Only culled and hidden verdicts are ever reused. A solved tile — even one
// whose owned pieces were all clipped away — contributes its silhouette
// segments to the front envelope, and skipping that contribution perturbs
// the envelope's byte representation enough to shift clip crossings by an
// ULP downstream. Cull reuse has no such hazard: a culled tile contributes
// nothing at all.

// Verdict classifies one tile's outcome within a solved frame.
type Verdict uint8

const (
	// VerdictNone means the tile has no recorded outcome.
	VerdictNone Verdict = iota
	// VerdictCulled means the tile was skipped: the front envelope already
	// covered its entire bounding box, so it was never solved.
	VerdictCulled
	// VerdictHidden means the tile was solved but every owned piece was
	// clipped away by the front envelope at the band barrier.
	VerdictHidden
	// VerdictVisible means the tile contributed at least one clipped piece.
	VerdictVisible
)

// String names the verdict for logs and stats.
func (v Verdict) String() string {
	switch v {
	case VerdictCulled:
		return "culled"
	case VerdictHidden:
		return "hidden"
	case VerdictVisible:
		return "visible"
	}
	return "none"
}

// WorldBox is a tile's frame-invariant world-space bounding box: the depth
// (X) and across (Y) ranges of its vertex rectangle — owned rows of its band
// times owned columns, both inclusive — and the maximum height H over it.
// Valid=false marks a tile with no known height bound; such a tile is never
// cone-verified.
type WorldBox struct {
	X0, X1 float64
	Y0, Y1 float64
	H      float64
	Valid  bool
}

// Cone projects the box conservatively through the perspective at eye: the
// returned interval [lo, hi] contains the transformed Y of every point of
// the box, and z is an upper bound on its transformed height. ok=false means
// the box reaches depths below minDepth (or has no bound), where the
// projection is unbounded; the caller must then fall back to exact checks.
func (wb WorldBox) Cone(eye geom.Pt3, minDepth float64) (lo, hi, z float64, ok bool) {
	if !wb.Valid {
		return 0, 0, 0, false
	}
	if minDepth <= 0 {
		minDepth = geom.DefaultMinDepth
	}
	d0, d1 := wb.X0-eye.X, wb.X1-eye.X
	if d0 < minDepth || d1 < minDepth {
		return 0, 0, 0, false
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, wy := range [2]float64{wb.Y0, wb.Y1} {
		for _, d := range [2]float64{d0, d1} {
			v := (wy - eye.Y) / d
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	z = math.Max((wb.H-eye.Z)/d0, (wb.H-eye.Z)/d1)
	return lo, hi, z, true
}

// TileBounds computes every tile's world bounding box from a resident grid
// terrain in world (untransformed) space. The scan covers exactly the vertex
// rectangle ownedExtent scans after the per-frame transform — owned cell
// rows and columns, both ends inclusive — so a Cone projection of the box
// bounds the tile's exact transformed extent for any eye.
func TileBounds(t *terrain.Terrain, p *Partition) ([]WorldBox, error) {
	if t == nil || !t.IsGrid() {
		return nil, fmt.Errorf("tile: terrain is not a grid")
	}
	if t.GridRows != p.Rows || t.GridCols != p.Cols {
		return nil, fmt.Errorf("tile: partition is %dx%d cells but terrain is %dx%d", p.Rows, p.Cols, t.GridRows, t.GridCols)
	}
	nvc := t.GridCols + 1
	out := make([]WorldBox, p.NumTiles())
	for b := 0; b < p.NumBands; b++ {
		for c := 0; c < p.NumCols; c++ {
			r0, r1, c0, c1 := p.TileCells(b, c)
			wb := WorldBox{
				X0: math.Inf(1), X1: math.Inf(-1),
				Y0: math.Inf(1), Y1: math.Inf(-1),
				H: math.Inf(-1), Valid: true,
			}
			for i := r0; i <= r1; i++ {
				for j := c0; j <= c1; j++ {
					v := t.Verts[i*nvc+j]
					wb.X0 = math.Min(wb.X0, v.X)
					wb.X1 = math.Max(wb.X1, v.X)
					wb.Y0 = math.Min(wb.Y0, v.Y)
					wb.Y1 = math.Max(wb.Y1, v.Y)
					wb.H = math.Max(wb.H, v.Z)
				}
			}
			out[b*p.NumCols+c] = wb
		}
	}
	return out, nil
}

// TileBounds computes every tile's world bounding box without paging any
// heights: the world X/Y ranges follow in closed form from the grid geometry
// (both coordinates are monotone in the sample indices, even under float
// rounding, so corners bound the rectangle), and H comes from the source's
// MaxHeight over the same inclusive sample rectangle the paged cull queries.
// Tiles whose source reports no bound get Valid=false and are never
// cone-verified — matching solvePagedTile, which never culls them either.
func (g *PagedGrid) TileBounds(p *Partition) []WorldBox {
	worldY := func(i, j int) float64 {
		q := geom.Pt3{X: float64(i) * g.Cell, Y: float64(j) * g.Cell}
		if g.Shear > 0 {
			q.Y += g.Shear * q.X
		}
		return q.Y
	}
	out := make([]WorldBox, p.NumTiles())
	for b := 0; b < p.NumBands; b++ {
		for c := 0; c < p.NumCols; c++ {
			// Cell-exclusive uppers equal vertex-inclusive uppers, so the
			// corner samples below span the tile's vertex rectangle.
			r0, r1, c0, c1 := p.TileCells(b, c)
			wb := WorldBox{
				X0: float64(r0) * g.Cell,
				X1: float64(r1) * g.Cell,
				Y0: math.Inf(1), Y1: math.Inf(-1),
			}
			for _, i := range [2]int{r0, r1} {
				for _, j := range [2]int{c0, c1} {
					y := worldY(i, j)
					wb.Y0 = math.Min(wb.Y0, y)
					wb.Y1 = math.Max(wb.Y1, y)
				}
			}
			if h, ok := g.Src.MaxHeight(r0, r1, c0, c1); ok {
				wb.H, wb.Valid = h, true
			}
			out[b*p.NumCols+c] = wb
		}
	}
	return out
}

// ReuseStats counts the verify-then-reuse outcomes of one coherent solve.
type ReuseStats struct {
	// TilesReused counts tiles skipped because the previous frame's culled
	// or hidden verdict still held under the conservative cone check.
	TilesReused int
	// TilesReverified counts tiles whose cone check failed but whose exact
	// cull check culled them anyway.
	TilesReverified int
	// TilesResolved counts tiles that ran a clean solve this frame.
	TilesResolved int
	// VerifyFailures counts cone checks that could not confirm the prior
	// verdict (the tile then fell back to the exact check or a clean solve).
	VerifyFailures int
}

// Add accumulates another solve's counts.
func (r *ReuseStats) Add(o ReuseStats) {
	r.TilesReused += o.TilesReused
	r.TilesReverified += o.TilesReverified
	r.TilesResolved += o.TilesResolved
	r.VerifyFailures += o.VerifyFailures
}

// Coherence activates frame-coherent verify-then-reuse in Solve and
// SolvePaged (via Options.Coherence): tiles whose previous-frame verdict was
// culled or hidden are cone-checked against the current front envelope and
// skipped when the check passes; every tile's fresh verdict is recorded for
// the next frame. Bounds must describe the same terrain the solve runs on
// (TileBounds) and, for paged solves, must be built from the same height
// source, so the cone check stays a strict strengthening of the exact cull.
type Coherence struct {
	// Bounds holds one frame-invariant world box per tile.
	Bounds []WorldBox
	// Eye is the frame's viewpoint in world space.
	Eye geom.Pt3
	// MinDepth is the frame's effective perspective depth floor (<= 0 picks
	// the geom default).
	MinDepth float64
	// Prev holds the previous frame's verdicts; nil means no prior frame
	// (verdicts are still recorded for the next one).
	Prev []Verdict
	// Out receives this frame's verdicts; the solve allocates it when nil.
	Out []Verdict
	// Stats receives this frame's reuse counters.
	Stats ReuseStats
	// Final receives the solve's final front envelope (including any seed),
	// for callers that carry it across frames.
	Final envelope.Profile
}

// reusable reports whether tile ti's prior verdict is eligible for cone
// verification. Only culled and hidden tiles qualify: they contributed
// nothing to the output, so skipping them on a confirmed verdict cannot
// change a single byte. Visible tiles always re-solve.
func (co *Coherence) reusable(ti int) bool {
	return ti < len(co.Prev) && ti < len(co.Bounds) &&
		(co.Prev[ti] == VerdictCulled || co.Prev[ti] == VerdictHidden)
}

// prepare resets the per-solve outputs and sizes Out.
func (co *Coherence) prepare(tiles int) {
	if len(co.Out) != tiles {
		co.Out = make([]Verdict, tiles)
	} else {
		for i := range co.Out {
			co.Out[i] = VerdictNone
		}
	}
	co.Stats = ReuseStats{}
	co.Final = nil
}
