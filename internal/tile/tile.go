package tile

import (
	"fmt"

	"terrainhsr/internal/terrain"
)

// Spec selects the tile dimensions of a partition, in grid cells.
// Zero values pick an automatic size aimed at a handful of tiles per axis
// with a sensible minimum tile extent.
type Spec struct {
	// TileRows is the number of cell rows per tile (the depth axis).
	TileRows int
	// TileCols is the number of cell columns per tile (the image axis).
	TileCols int
}

// autoTileSize picks a per-axis tile extent: about targetTiles tiles along
// the axis, but never smaller than minTile cells (tiny tiles pay extraction
// overhead without saving memory).
func autoTileSize(cells int) int {
	const targetTiles, minTile = 4, 16
	size := (cells + targetTiles - 1) / targetTiles
	if size < minTile {
		size = minTile
	}
	if size > cells {
		size = cells
	}
	return size
}

// AutoSize reports the per-axis tile extent a zero Spec picks for an axis
// of the given cell count.
func AutoSize(cells int) int { return autoTileSize(cells) }

// Partition is a row×col tiling of an R×C cell grid terrain. Bands are
// contiguous runs of cell rows — the depth axis, so bands are totally
// ordered front to back — and each band is cut into column tiles. The last
// band and column absorb the remainder, so tiles tile the grid exactly.
type Partition struct {
	// Rows and Cols are the terrain's cell dimensions.
	Rows, Cols int
	// TileRows and TileCols are the nominal tile dimensions in cells.
	TileRows, TileCols int
	// NumBands and NumCols are the tile-grid dimensions.
	NumBands, NumCols int
}

// NewPartition plans the tiling of a rows×cols cell grid.
func NewPartition(rows, cols int, spec Spec) (*Partition, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("tile: need a grid of at least 1x1 cells, got %dx%d", rows, cols)
	}
	tr, tc := spec.TileRows, spec.TileCols
	if tr < 0 || tc < 0 {
		return nil, fmt.Errorf("tile: negative tile size %dx%d", tr, tc)
	}
	if tr == 0 {
		tr = autoTileSize(rows)
	}
	if tc == 0 {
		tc = autoTileSize(cols)
	}
	if tr > rows {
		tr = rows
	}
	if tc > cols {
		tc = cols
	}
	return &Partition{
		Rows: rows, Cols: cols,
		TileRows: tr, TileCols: tc,
		NumBands: (rows + tr - 1) / tr,
		NumCols:  (cols + tc - 1) / tc,
	}, nil
}

// NumTiles returns the total tile count.
func (p *Partition) NumTiles() int { return p.NumBands * p.NumCols }

// BandRows returns the cell-row range [r0, r1) of band b.
func (p *Partition) BandRows(b int) (r0, r1 int) {
	r0 = b * p.TileRows
	r1 = r0 + p.TileRows
	if r1 > p.Rows {
		r1 = p.Rows
	}
	return r0, r1
}

// TileCells returns the owned cell rectangle [r0, r1) × [c0, c1) of the tile
// in band b, column slot c.
func (p *Partition) TileCells(b, c int) (r0, r1, c0, c1 int) {
	r0, r1 = p.BandRows(b)
	c0 = c * p.TileCols
	c1 = c0 + p.TileCols
	if c1 > p.Cols {
		c1 = p.Cols
	}
	return r0, r1, c0, c1
}

// edgeKey is a canonical (smaller, larger) global vertex pair.
type edgeKey struct{ a, b int32 }

func mkEdgeKey(u, v int32) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// EdgeIndex maps tile-local edges back to the full terrain's edge numbering
// and records, for every global edge, the grid cell that owns it (the cell
// of its lowest-numbered incident triangle). It depends only on topology, so
// one index serves every perspective frame of a terrain whose vertex-only
// transforms share the triangle and edge tables.
type EdgeIndex struct {
	byVerts map[edgeKey]int32
	// ownerCell[e] is the flattened cell index (i*Cols + j) owning edge e.
	ownerCell []int32
	cols      int
}

// NewEdgeIndex builds the edge index for a grid terrain.
func NewEdgeIndex(t *terrain.Terrain) (*EdgeIndex, error) {
	if !t.IsGrid() {
		return nil, fmt.Errorf("tile: terrain carries no grid metadata (built by something other than terrain.Grid)")
	}
	idx := &EdgeIndex{
		byVerts:   make(map[edgeKey]int32, len(t.Edges)),
		ownerCell: make([]int32, len(t.Edges)),
		cols:      t.GridCols,
	}
	for e, ed := range t.Edges {
		idx.byVerts[edgeKey{ed.V0, ed.V1}] = int32(e)
		owner := ed.Left
		if owner == terrain.NoTri || (ed.Right != terrain.NoTri && ed.Right < owner) {
			owner = ed.Right
		}
		idx.ownerCell[e] = owner / 2 // Grid.Build emits two triangles per cell
	}
	return idx, nil
}

// Owner returns the owning cell (i, j) of global edge e.
func (idx *EdgeIndex) Owner(e int32) (i, j int) {
	cell := int(idx.ownerCell[e])
	return cell / idx.cols, cell % idx.cols
}

// Global resolves a global vertex pair to its global edge id.
func (idx *EdgeIndex) Global(v0, v1 int32) (int32, bool) {
	e, ok := idx.byVerts[mkEdgeKey(v0, v1)]
	return e, ok
}
