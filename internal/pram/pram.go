package pram

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Phase is one synchronized round of the algorithm.
type Phase struct {
	Name string
	// Tasks is N_i: the number of independently scheduled tasks.
	Tasks int
	// MaxTaskCost is t_i: the largest single-task cost (critical path of
	// the phase given unlimited processors).
	MaxTaskCost int64
	// TotalCost is W_i: the summed cost of all tasks.
	TotalCost int64
}

// Accounting accumulates the phases of one algorithm run. It is safe for
// concurrent use: phase recording takes a mutex (phases are coarse).
type Accounting struct {
	mu     sync.Mutex
	phases []Phase
}

// AddPhase records a completed phase.
func (a *Accounting) AddPhase(name string, tasks int, maxTaskCost, totalCost int64) {
	if tasks <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.phases = append(a.phases, Phase{Name: name, Tasks: tasks, MaxTaskCost: maxTaskCost, TotalCost: totalCost})
}

// Merge appends all phases of b (used when sub-computations keep their own
// accounting).
func (a *Accounting) Merge(b *Accounting) {
	if b == nil {
		return
	}
	b.mu.Lock()
	phases := append([]Phase(nil), b.phases...)
	b.mu.Unlock()
	a.mu.Lock()
	a.phases = append(a.phases, phases...)
	a.mu.Unlock()
}

// Phases returns a copy of the recorded phases.
func (a *Accounting) Phases() []Phase {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Phase(nil), a.phases...)
}

// NumPhases returns the number of recorded phases.
func (a *Accounting) NumPhases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.phases)
}

// Work is the total operation count across phases (the paper's work bound
// target: O((n+k) polylog n)).
func (a *Accounting) Work() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var w int64
	for _, ph := range a.phases {
		w += ph.TotalCost
	}
	return w
}

// Depth is the unlimited-processor parallel time: the sum over phases of the
// critical path within the phase (the paper's O(log^4 n) target).
func (a *Accounting) Depth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var d int64
	for _, ph := range a.phases {
		d += ph.MaxTaskCost
	}
	return d
}

// AllocCharge is t_{p,r}: the paper charges O(r log r / p) time to allocate
// p processors to r tasks.
func AllocCharge(r, p int) float64 {
	if r <= 1 || p <= 0 {
		return 0
	}
	return float64(r) * math.Log2(float64(r)) / float64(p)
}

// TimeOn evaluates the Brent slow-down bound for p processors:
// sum_i (W_i/p + t_i + t_{p,N_i}). This is Lemma 2.1 applied per phase.
func (a *Accounting) TimeOn(p int) float64 {
	if p < 1 {
		p = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var t float64
	for _, ph := range a.phases {
		t += float64(ph.TotalCost)/float64(p) + float64(ph.MaxTaskCost) + AllocCharge(ph.Tasks, p)
	}
	return t
}

// Summary renders a human-readable per-phase table.
func (a *Accounting) Summary() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %12s %14s\n", "phase", "tasks", "max-task", "total")
	for _, ph := range a.phases {
		fmt.Fprintf(&b, "%-28s %10d %12d %14d\n", ph.Name, ph.Tasks, ph.MaxTaskCost, ph.TotalCost)
	}
	return b.String()
}

// PhaseRecorder collects per-task costs from concurrent workers and turns
// them into a Phase. Workers call Task with their measured cost; Close
// finalizes into the accounting. Costs are merged per worker to avoid
// contention.
type PhaseRecorder struct {
	name    string
	acct    *Accounting
	mu      sync.Mutex
	tasks   int
	maxCost int64
	total   int64
}

// NewPhase starts recording a phase.
func (a *Accounting) NewPhase(name string) *PhaseRecorder {
	return &PhaseRecorder{name: name, acct: a}
}

// Task records one task of the given cost.
func (r *PhaseRecorder) Task(cost int64) {
	r.mu.Lock()
	r.tasks++
	if cost > r.maxCost {
		r.maxCost = cost
	}
	r.total += cost
	r.mu.Unlock()
}

// TaskBatch records n tasks with the given maximum and total cost
// (one lock acquisition for a whole worker block).
func (r *PhaseRecorder) TaskBatch(n int, maxCost, total int64) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	r.tasks += n
	if maxCost > r.maxCost {
		r.maxCost = maxCost
	}
	r.total += total
	r.mu.Unlock()
}

// Close finalizes the phase into the accounting.
func (r *PhaseRecorder) Close() {
	if r.tasks > 0 {
		r.acct.AddPhase(r.name, r.tasks, r.maxCost, r.total)
	}
}
