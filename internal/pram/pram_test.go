package pram

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestWorkDepth(t *testing.T) {
	var a Accounting
	a.AddPhase("p1", 10, 5, 50)
	a.AddPhase("p2", 4, 20, 60)
	if w := a.Work(); w != 110 {
		t.Fatalf("work %d", w)
	}
	if d := a.Depth(); d != 25 {
		t.Fatalf("depth %d", d)
	}
	if n := a.NumPhases(); n != 2 {
		t.Fatalf("phases %d", n)
	}
}

func TestAddPhaseIgnoresEmpty(t *testing.T) {
	var a Accounting
	a.AddPhase("empty", 0, 0, 0)
	if a.NumPhases() != 0 {
		t.Fatal("empty phase recorded")
	}
}

func TestTimeOnMonotone(t *testing.T) {
	var a Accounting
	a.AddPhase("p1", 1000, 10, 10000)
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 4, 8, 16, 256} {
		tm := a.TimeOn(p)
		if tm > prev+1e-9 {
			t.Fatalf("TimeOn not non-increasing at p=%d: %v > %v", p, tm, prev)
		}
		prev = tm
	}
	// With many processors, time approaches the critical path.
	if tm := a.TimeOn(1 << 20); tm < 10 {
		t.Fatalf("TimeOn below depth: %v", tm)
	}
}

func TestTimeOnBrentBound(t *testing.T) {
	var a Accounting
	a.AddPhase("p", 100, 7, 700)
	// Brent: T_p >= W/p and T_p >= t.
	for _, p := range []int{1, 3, 10} {
		tm := a.TimeOn(p)
		if tm < 700/float64(p) || tm < 7 {
			t.Fatalf("Brent bound violated at p=%d: %v", p, tm)
		}
	}
}

func TestAllocCharge(t *testing.T) {
	if AllocCharge(1, 4) != 0 {
		t.Fatal("alloc of single task should be free")
	}
	if AllocCharge(0, 4) != 0 || AllocCharge(16, 0) != 0 {
		t.Fatal("degenerate alloc should be 0")
	}
	got := AllocCharge(16, 4)
	if math.Abs(got-16*4/4.0) > 1e-9 {
		t.Fatalf("AllocCharge(16,4)=%v want 16", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Accounting
	a.AddPhase("a", 1, 1, 1)
	b.AddPhase("b", 2, 2, 4)
	a.Merge(&b)
	if a.NumPhases() != 2 || a.Work() != 5 {
		t.Fatalf("merge failed: %d phases, work %d", a.NumPhases(), a.Work())
	}
	a.Merge(nil) // must not panic
}

func TestPhaseRecorderConcurrent(t *testing.T) {
	var a Accounting
	rec := a.NewPhase("concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Task(int64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	rec.Close()
	ph := a.Phases()
	if len(ph) != 1 {
		t.Fatalf("phases %d", len(ph))
	}
	if ph[0].Tasks != 800 {
		t.Fatalf("tasks %d", ph[0].Tasks)
	}
	if ph[0].MaxTaskCost != 8 {
		t.Fatalf("max cost %d", ph[0].MaxTaskCost)
	}
	var want int64
	for w := 1; w <= 8; w++ {
		want += int64(w) * 100
	}
	if ph[0].TotalCost != want {
		t.Fatalf("total %d want %d", ph[0].TotalCost, want)
	}
}

func TestPhaseRecorderBatchAndEmpty(t *testing.T) {
	var a Accounting
	rec := a.NewPhase("batch")
	rec.TaskBatch(10, 9, 55)
	rec.TaskBatch(0, 100, 100) // ignored
	rec.Close()
	ph := a.Phases()
	if len(ph) != 1 || ph[0].Tasks != 10 || ph[0].MaxTaskCost != 9 || ph[0].TotalCost != 55 {
		t.Fatalf("batch phase wrong: %+v", ph)
	}

	var b Accounting
	empty := b.NewPhase("nothing")
	empty.Close()
	if b.NumPhases() != 0 {
		t.Fatal("empty recorder produced a phase")
	}
}

func TestSummaryContainsPhases(t *testing.T) {
	var a Accounting
	a.AddPhase("order-edges", 5, 2, 10)
	s := a.Summary()
	if !strings.Contains(s, "order-edges") {
		t.Fatalf("summary missing phase name:\n%s", s)
	}
}
