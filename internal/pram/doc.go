// Package pram implements the CREW PRAM cost model of the paper: work and
// depth accounting for phased parallel algorithms, Brent-style slow-down
// scheduling (Lemmas 2.1 and 2.2), and the processor-allocation charge
// t_{p,r} = O(r log r / p) the paper applies before stating Theorem 3.1.
//
// The model does not execute anything; the algorithms run on goroutines
// (package parallel) and report their phases here. A Phase records N tasks
// of maximum individual cost t and total cost W (all in units of charged
// elementary operations). The model then answers:
//
//   - Depth()   = sum of per-phase critical paths (time with p = inf)
//   - Work()    = sum of per-phase total costs
//   - TimeOn(p) = sum over phases of (W_i/p + t_i + alloc(N_i, p))
//
// which is exactly Lemma 2.1's O(t_{p,N} + phases*t + N*t/p) bound with the
// allocation term instantiated as in the paper's final accounting.
package pram
