package hull

import (
	"fmt"
	"sync/atomic"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/persist"
)

// endpoints is the subtree aggregate: the chain's extreme points, giving
// O(1) access to in-order neighbours during descents.
type endpoints struct {
	first, last geom.Pt2
}

// Node is a persistent hull-chain node.
type Node = persist.Node[geom.Pt2, endpoints]

// Ops carries the arena-bound persistent-tree operations for hull chains.
type Ops struct {
	P *persist.Ops[geom.Pt2, endpoints]
}

// NewOps creates hull operations allocating from the given arena.
func NewOps(arena *persist.Arena) *Ops {
	return &Ops{P: &persist.Ops[geom.Pt2, endpoints]{
		Arena: arena,
		Agg: func(v geom.Pt2, l, r *Node) endpoints {
			e := endpoints{first: v, last: v}
			if l != nil {
				e.first = l.Agg.first
			}
			if r != nil {
				e.last = r.Agg.last
			}
			return e
		},
	}}
}

// Chain is a convex chain over points with strictly increasing X.
// Lower chains turn left (the boundary of the hull from below); upper
// chains turn right. The zero Chain is empty.
type Chain struct {
	T     *Node
	Lower bool
}

// Size returns the number of hull points.
func (c Chain) Size() int { return persist.Size(c.T) }

// Points materializes the chain (test/debug helper).
func (c Chain) Points() []geom.Pt2 { return persist.Slice(c.T) }

// sign returns +1 for lower chains and -1 for upper ones; multiplying Z by
// sign maps every upper-hull predicate onto the lower-hull case.
func (c Chain) sign() float64 {
	if c.Lower {
		return 1
	}
	return -1
}

// cross3 is the orientation of (a,b,c) with Z negated for upper chains, so
// "above" uniformly means "on the kept side".
func cross3(s float64, a, b, c geom.Pt2) float64 {
	return (b.X-a.X)*(s*c.Z-s*a.Z) - (s*b.Z-s*a.Z)*(c.X-a.X)
}

// Build constructs the chain of the given hull type over points sorted by
// X (ties on X resolved by keeping the extreme Z for the chain type).
// The scan is Andrew's monotone chain; collinear middle points are dropped.
func Build(o *Ops, pts []geom.Pt2, lower bool) Chain {
	c := Chain{Lower: lower}
	s := c.sign()
	var hull []geom.Pt2
	for _, p := range pts {
		// Resolve X-ties: keep the point extreme in the kept direction
		// (drop the dominated one; the survivor goes through the pop loop).
		if n := len(hull); n > 0 && p.X-hull[n-1].X <= geom.Eps {
			if s*p.Z < s*hull[n-1].Z {
				hull = hull[:n-1]
			} else {
				continue
			}
		}
		for len(hull) >= 2 && cross3(s, hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	c.T = o.P.Build(hull)
	return c
}

// Build2 builds the chain of the two endpoints of a single profile piece —
// the leaf case of every aggregate merge. It follows Build exactly (same
// tie handling, same node and priority stream) but keeps the two points in
// a stack buffer instead of allocating working slices.
func Build2(o *Ops, a, b geom.Pt2, lower bool) Chain {
	c := Chain{Lower: lower}
	var buf [2]geom.Pt2
	n := 0
	if b.X-a.X <= geom.Eps {
		// X-tie: keep the point extreme in the kept direction.
		p := a
		if c.sign()*b.Z < c.sign()*a.Z {
			p = b
		}
		buf[0], n = p, 1
	} else {
		buf[0], buf[1], n = a, b, 2
	}
	c.T = o.P.Build(buf[:n])
	return c
}

// Extreme returns the hull point optimizing (Z - m*X): the maximum for an
// upper chain, the minimum for a lower chain. This is the tangent query the
// crossing test needs. The chain must be non-empty.
//
// Along a chain of the kept type, g(p) = sign*(Z - m*X) is convex, so the
// minimizer is found by binary search comparing adjacent elements.
func (c Chain) Extreme(m float64) geom.Pt2 {
	if c.T == nil {
		panic("hull: Extreme on empty chain")
	}
	s := c.sign()
	g := func(p geom.Pt2) float64 { return s * (p.Z - m*p.X) }
	lo, hi := 0, c.Size()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g(persist.At(c.T, mid+1)) < g(persist.At(c.T, mid)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return persist.At(c.T, lo)
}

// ExtremeValue returns (Z - m*X) at the extreme point.
func (c Chain) ExtremeValue(m float64) float64 {
	p := c.Extreme(m)
	return p.Z - m*p.X
}

// tangentFrom returns the rank and point t of the chain such that the line
// p->t supports the chain (all chain points on the kept side), where p lies
// left of the chain. The slope sequence from p to the chain points is
// convex, so the minimizer is found by binary search comparing adjacent
// elements ("slope(p->a) < slope(p->b)" is cross3(s,p,b,a) < 0).
func (c Chain) tangentFrom(p geom.Pt2) (int, geom.Pt2) {
	if c.T == nil {
		panic("hull: tangentFrom on empty chain")
	}
	s := c.sign()
	lo, hi := 0, c.Size()-1
	for lo < hi {
		mid := (lo + hi) / 2
		a, b := persist.At(c.T, mid), persist.At(c.T, mid+1)
		if cross3(s, p, a, b) < 0 { // slope(p->b) < slope(p->a): keep going right
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, persist.At(c.T, lo)
}

// MergeDisjoint merges chain a (strictly left of b in X, except possibly a
// shared boundary column) with chain b into the convex chain of the union,
// sharing structure with both inputs. Cost O(log^3): O(log) bridge probes,
// each with an O(log^2) tangent search (rank-based binary search with
// O(log) element access). The classic Overmars-van Leeuwen descent achieves
// O(log^2); we trade one log factor for a simpler, verifiable search with a
// guaranteed-correct rebuild fallback.
func (o *Ops) MergeDisjoint(a, b Chain) Chain {
	if a.Lower != b.Lower {
		panic("hull: merging chains of different types")
	}
	if a.T == nil {
		return b
	}
	if b.T == nil {
		return a
	}
	// Abutting chains may share a boundary column (equal X at the
	// junction); a chain with duplicate X would no longer be strictly
	// monotone, so drop the dominated junction point first.
	s := a.sign()
	for a.T != nil && b.T != nil {
		la := a.T.Agg.last
		fb := b.T.Agg.first
		if fb.X-la.X > geom.Eps {
			break
		}
		if s*fb.Z <= s*la.Z {
			t, _ := o.P.SplitRank(a.T, persist.Size(a.T)-1)
			a.T = t
		} else {
			_, t := o.P.SplitRank(b.T, 1)
			b.T = t
		}
	}
	if a.T == nil {
		return b
	}
	if b.T == nil {
		return a
	}
	if i, j, ok := o.bridge(a, b); ok {
		left, _ := o.P.SplitRank(a.T, i+1)
		_, right := o.P.SplitRank(b.T, j)
		m := Chain{T: o.P.Join(left, right), Lower: a.Lower}
		if m.junctionConvex(i + 1) {
			return m
		}
	}
	// Degenerate case: rebuild from scratch (correct, loses sharing).
	atomic.AddInt64(&fallbackMerges, 1)
	pts := append(a.Points(), b.Points()...)
	return Build(o, pts, a.Lower)
}

// junctionConvex verifies convexity in a window around the bridge junction
// (rank j = first point taken from the right chain) in O(log): the two
// source chains are convex, so only turns involving the bridge edge can be
// wrong.
func (c Chain) junctionConvex(j int) bool {
	s := c.sign()
	n := c.Size()
	for i := j - 2; i <= j; i++ {
		if i < 0 || i+2 >= n {
			continue
		}
		if cross3(s, persist.At(c.T, i), persist.At(c.T, i+1), persist.At(c.T, i+2)) <= 0 {
			return false
		}
	}
	return true
}

// fallbackMerges counts how often the bridge search fell back to a full
// rebuild.
var fallbackMerges int64

// FallbackMerges returns the number of bridge-search fallbacks so far
// (tests assert the fast path dominates).
func FallbackMerges() int64 { return atomic.LoadInt64(&fallbackMerges) }

// bridge finds ranks (i, j) such that a[0..i] ++ b[j..] is the hull of the
// union (the common tangent), by binary search over a with an exact tangent
// query into b per probe. Returns ok=false when the search cannot verify a
// bridge (degenerate collinearities); the caller then rebuilds.
func (o *Ops) bridge(a, b Chain) (int, int, bool) {
	s := a.sign()
	sz := a.Size()
	lo, hi := 0, sz-1
	for lo <= hi {
		i := (lo + hi) / 2
		av := persist.At(a.T, i)
		j, bv := b.tangentFrom(av)
		succBelow := i+1 < sz && cross3(s, av, bv, persist.At(a.T, i+1)) < 0
		predBelow := i > 0 && cross3(s, av, bv, persist.At(a.T, i-1)) < 0
		switch {
		case succBelow:
			lo = i + 1
		case predBelow:
			hi = i - 1
		default:
			return i, j, true
		}
	}
	return 0, 0, false
}

// Validate checks convexity and X-monotonicity (test helper).
func (c Chain) Validate() error {
	pts := c.Points()
	s := c.sign()
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			return fmt.Errorf("hull: X not increasing at %d", i)
		}
	}
	for i := 2; i < len(pts); i++ {
		if cross3(s, pts[i-2], pts[i-1], pts[i]) <= 0 {
			return fmt.Errorf("hull: not strictly convex at %d", i)
		}
	}
	return nil
}
