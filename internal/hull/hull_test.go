package hull

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/persist"
)

func newOps() *Ops { return NewOps(persist.NewArena(1)) }

// bruteHull computes the lower (or upper) hull of pts by definition: the
// points p such that no line through two other points dominates p from the
// kept side. We use the O(n^2) Andrew check instead: run the scan on a copy.
func bruteExtreme(pts []geom.Pt2, m float64, lower bool) float64 {
	best := math.Inf(1)
	if !lower {
		best = math.Inf(-1)
	}
	for _, p := range pts {
		v := p.Z - m*p.X
		if lower && v < best {
			best = v
		}
		if !lower && v > best {
			best = v
		}
	}
	return best
}

func sortedRandPts(r *rand.Rand, n int) []geom.Pt2 {
	pts := make([]geom.Pt2, n)
	used := map[float64]bool{}
	for i := range pts {
		x := math.Round(r.Float64()*1e6) / 1e3 // well-separated xs
		for used[x] {
			x = math.Round(r.Float64()*1e6) / 1e3
		}
		used[x] = true
		pts[i] = geom.P2(x, r.Float64()*100-50)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

func TestBuildValidates(t *testing.T) {
	o := newOps()
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		pts := sortedRandPts(r, 2+r.Intn(60))
		for _, lower := range []bool{true, false} {
			c := Build(o, pts, lower)
			if err := c.Validate(); err != nil {
				t.Fatalf("trial %d lower=%v: %v", trial, lower, err)
			}
			if c.Size() < 2 {
				t.Fatalf("hull of %d points has %d vertices", len(pts), c.Size())
			}
			// First and last input points always on the hull.
			hp := c.Points()
			if hp[0] != pts[0] || hp[len(hp)-1] != pts[len(pts)-1] {
				t.Fatalf("hull endpoints wrong")
			}
		}
	}
}

func TestExtremeMatchesBruteForce(t *testing.T) {
	o := newOps()
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		pts := sortedRandPts(r, 2+r.Intn(80))
		for _, lower := range []bool{true, false} {
			c := Build(o, pts, lower)
			for q := 0; q < 20; q++ {
				m := (r.Float64()*2 - 1) * 10
				want := bruteExtreme(pts, m, lower)
				got := c.ExtremeValue(m)
				if math.Abs(want-got) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("trial %d lower=%v m=%v: got %v want %v", trial, lower, m, got, want)
				}
			}
		}
	}
}

func TestMergeDisjointMatchesFullBuild(t *testing.T) {
	o := newOps()
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		na, nb := 1+r.Intn(40), 1+r.Intn(40)
		all := sortedRandPts(r, na+nb)
		left, right := all[:na], all[na:]
		for _, lower := range []bool{true, false} {
			a := Build(o, left, lower)
			b := Build(o, right, lower)
			m := o.MergeDisjoint(a, b)
			if err := m.Validate(); err != nil {
				t.Fatalf("trial %d lower=%v: merged invalid: %v", trial, lower, err)
			}
			want := Build(o, all, lower)
			wp, mp := want.Points(), m.Points()
			if len(wp) != len(mp) {
				t.Fatalf("trial %d lower=%v: merged hull size %d want %d\nmerged: %v\nwant: %v",
					trial, lower, len(mp), len(wp), mp, wp)
			}
			for i := range wp {
				if wp[i] != mp[i] {
					t.Fatalf("trial %d lower=%v: point %d differs: %v vs %v", trial, lower, i, mp[i], wp[i])
				}
			}
		}
	}
}

func TestMergePreservesInputs(t *testing.T) {
	o := newOps()
	r := rand.New(rand.NewSource(4))
	all := sortedRandPts(r, 30)
	a := Build(o, all[:15], true)
	b := Build(o, all[15:], true)
	ap := a.Points()
	bp := b.Points()
	o.MergeDisjoint(a, b)
	// Persistence: inputs unchanged.
	ap2, bp2 := a.Points(), b.Points()
	if len(ap) != len(ap2) || len(bp) != len(bp2) {
		t.Fatal("merge mutated inputs")
	}
	for i := range ap {
		if ap[i] != ap2[i] {
			t.Fatal("merge mutated left input")
		}
	}
}

func TestMergeWithEmpty(t *testing.T) {
	o := newOps()
	pts := []geom.Pt2{geom.P2(0, 0), geom.P2(1, 1)}
	c := Build(o, pts, true)
	if m := o.MergeDisjoint(Chain{Lower: true}, c); m.Size() != 2 {
		t.Fatal("merge with empty left failed")
	}
	if m := o.MergeDisjoint(c, Chain{Lower: true}); m.Size() != 2 {
		t.Fatal("merge with empty right failed")
	}
}

func TestXTieKeepsExtreme(t *testing.T) {
	o := newOps()
	pts := []geom.Pt2{geom.P2(0, 5), geom.P2(1, 3), geom.P2(1, -2), geom.P2(2, 4)}
	lower := Build(o, pts, true)
	// Lower hull must use z=-2 at x=1.
	found := false
	for _, p := range lower.Points() {
		if p.X == 1 && p.Z == -2 {
			found = true
		}
		if p.X == 1 && p.Z == 3 {
			t.Fatal("lower hull kept dominated tie point")
		}
	}
	if !found {
		t.Fatal("lower hull lost the extreme tie point")
	}
	upper := Build(o, pts, false)
	for _, p := range upper.Points() {
		if p.X == 1 && p.Z == -2 {
			t.Fatal("upper hull kept dominated tie point")
		}
	}
}

func TestMergeSharedBoundaryColumn(t *testing.T) {
	// Right chain starts at the same X where the left one ends (abutting
	// profile pieces share a column).
	o := newOps()
	left := []geom.Pt2{geom.P2(0, 0), geom.P2(2, 1)}
	right := []geom.Pt2{geom.P2(2, 3), geom.P2(4, 0)}
	a := Build(o, left, true)
	b := Build(o, right, true)
	m := o.MergeDisjoint(a, b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
	all := append(append([]geom.Pt2{}, left...), right...)
	want := Build(o, all, true)
	if len(want.Points()) != len(m.Points()) {
		t.Fatalf("merged %v want %v", m.Points(), want.Points())
	}
}

func TestExtremeSinglePoint(t *testing.T) {
	o := newOps()
	c := Build(o, []geom.Pt2{geom.P2(3, 7)}, true)
	if p := c.Extreme(2); p != geom.P2(3, 7) {
		t.Fatalf("extreme of singleton: %v", p)
	}
}

func TestLargeMergeChain(t *testing.T) {
	// Build a big hull by merging many small pieces left to right; verify
	// against one-shot construction.
	o := newOps()
	r := rand.New(rand.NewSource(9))
	all := sortedRandPts(r, 500)
	for _, lower := range []bool{true, false} {
		acc := Chain{Lower: lower}
		for i := 0; i < len(all); i += 25 {
			end := i + 25
			if end > len(all) {
				end = len(all)
			}
			acc = o.MergeDisjoint(acc, Build(o, all[i:end], lower))
		}
		want := Build(o, all, lower)
		if len(acc.Points()) != len(want.Points()) {
			t.Fatalf("lower=%v: chained merge %d points, want %d", lower, len(acc.Points()), len(want.Points()))
		}
		for i, p := range want.Points() {
			if acc.Points()[i] != p {
				t.Fatalf("lower=%v point %d differs", lower, i)
			}
		}
	}
}

func TestBridgeFastPathDominates(t *testing.T) {
	before := FallbackMerges()
	o := newOps()
	r := rand.New(rand.NewSource(77))
	merges := 0
	for trial := 0; trial < 200; trial++ {
		all := sortedRandPts(r, 4+r.Intn(60))
		cut := 1 + r.Intn(len(all)-2)
		for _, lower := range []bool{true, false} {
			a := Build(o, all[:cut], lower)
			b := Build(o, all[cut:], lower)
			o.MergeDisjoint(a, b)
			merges++
		}
	}
	fb := FallbackMerges() - before
	if fb*10 > int64(merges) {
		t.Fatalf("bridge fallback rate too high: %d of %d merges", fb, merges)
	}
}
