// Package hull implements the convex-chain machinery of the paper's ACG
// structure (Lemmas 3.3-3.5): lower and upper convex hulls of profile
// vertices stored in persistent trees, merged across subtrees by
// Overmars-van Leeuwen style bridge (common tangent) searches, and queried
// for extreme points in a direction.
//
// The augmented-CG test "does segment s cross the profile sub-chain between
// two diagonals" reduces to extreme-point queries: s crosses iff the maximum
// of (z - m*x) over the sub-chain's vertices (an upper-hull query, m = s's
// slope) and the minimum (a lower-hull query) straddle s's intercept. The
// paper stores lower chains and derives the rest from context; we store
// both chains for exactness.
//
// Chains are persistent: merging two chains shares all untouched structure
// with its inputs, so the profiles of one PCT layer hold their hulls in
// O(new material * polylog) extra space — the paper's Figure 3.
package hull
