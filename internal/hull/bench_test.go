package hull

import (
	"fmt"
	"math/rand"
	"testing"

	"terrainhsr/internal/persist"
)

func BenchmarkBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1 << 8, 1 << 12} {
		pts := sortedRandPts(r, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			o := NewOps(persist.NewArena(1))
			for i := 0; i < b.N; i++ {
				Build(o, pts, true)
			}
		})
	}
}

func BenchmarkMergeDisjoint(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	all := sortedRandPts(r, 1<<12)
	o := NewOps(persist.NewArena(2))
	left := Build(o, all[:1<<11], true)
	right := Build(o, all[1<<11:], true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.MergeDisjoint(left, right)
	}
}

func BenchmarkExtreme(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	pts := sortedRandPts(r, 1<<14)
	o := NewOps(persist.NewArena(3))
	c := Build(o, pts, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Extreme(float64(i%41) - 20)
	}
}
