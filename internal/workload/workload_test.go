package workload

import (
	"testing"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, k := range Kinds {
		tr, err := Generate(Params{Kind: k, Rows: 8, Cols: 8, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid terrain: %v", k, err)
		}
		if tr.NumEdges() == 0 {
			t.Fatalf("%s: no edges", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Params{Kind: Fractal, Rows: 8, Cols: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Kind: Fractal, Rows: 8, Cols: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Verts {
		if a.Verts[i] != b.Verts[i] {
			t.Fatalf("vertex %d differs across runs with same seed", i)
		}
	}
	c, err := Generate(Params{Kind: Fractal, Rows: 8, Cols: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Verts {
		if a.Verts[i] != c.Verts[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical terrain")
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate(Params{Kind: "volcano", Rows: 4, Cols: 4}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestGenerateBadDims(t *testing.T) {
	if _, err := Generate(Params{Kind: Fractal, Rows: 0, Cols: 4}); err == nil {
		t.Fatal("expected error for zero rows")
	}
}

func TestRidgeWallPresent(t *testing.T) {
	tr, err := Generate(Params{Kind: Ridge, Rows: 6, Cols: 6, Seed: 5, RidgeHeight: 50, RidgeRow: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All vertices on row 1 must be at the ridge height.
	found := 0
	for _, v := range tr.Verts {
		if v.X == 1 {
			if v.Z != 50 {
				t.Fatalf("ridge vertex at height %v, want 50", v.Z)
			}
			found++
		}
	}
	if found != 7 {
		t.Fatalf("expected 7 ridge vertices, found %d", found)
	}
}

func TestTiltedDirections(t *testing.T) {
	up, err := Generate(Params{Kind: TiltedUp, Rows: 10, Cols: 4, Seed: 2, Slope: 1, Amplitude: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	down, err := Generate(Params{Kind: TiltedDown, Rows: 10, Cols: 4, Seed: 2, Slope: 1, Amplitude: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Mean height of back row must exceed front row for TiltedUp, and
	// vice versa for TiltedDown.
	rowMean := func(tr interface {
		HeightAt(x, y float64) (float64, bool)
	}, x float64) float64 {
		sum, cnt := 0.0, 0
		// Sample inside the sheared domain: y in [shear*x, 4+shear*x].
		for y := 0.07*x + 0.5; y < 0.07*x+4; y++ {
			if z, ok := tr.HeightAt(x, y); ok {
				sum += z
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	if !(rowMean(up, 9.5) > rowMean(up, 0.5)) {
		t.Fatal("TiltedUp does not rise away from viewer")
	}
	if !(rowMean(down, 9.5) < rowMean(down, 0.5)) {
		t.Fatal("TiltedDown does not fall away from viewer")
	}
}

func TestCountImageCrossings(t *testing.T) {
	// A rough terrain must have many crossings; a tiny flat one, few.
	rough, err := Generate(Params{Kind: Rough, Rows: 5, Cols: 5, Seed: 9, Amplitude: 5})
	if err != nil {
		t.Fatal(err)
	}
	flatish, err := Generate(Params{Kind: Sinusoid, Rows: 5, Cols: 5, Seed: 9, Amplitude: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ir := CountImageCrossings(rough)
	if_ := CountImageCrossings(flatish)
	if ir <= if_ {
		t.Fatalf("rough terrain crossings (%d) not above near-flat (%d)", ir, if_)
	}
}

func TestFractalLooksFractal(t *testing.T) {
	tr, err := Generate(Params{Kind: Fractal, Rows: 16, Cols: 16, Seed: 7, Amplitude: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Height variance must be nonzero and heights bounded by a few amplitudes.
	var mn, mx float64
	for i, v := range tr.Verts {
		if i == 0 {
			mn, mx = v.Z, v.Z
		}
		if v.Z < mn {
			mn = v.Z
		}
		if v.Z > mx {
			mx = v.Z
		}
	}
	if mx-mn < 0.1 {
		t.Fatal("fractal terrain is flat")
	}
	if mx-mn > 100 {
		t.Fatalf("fractal terrain implausibly tall: %v", mx-mn)
	}
}
