package workload

import (
	"fmt"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/terrain"
)

// Viewpoint scenario generators. The library's perspective pipeline views a
// terrain from eye points with every vertex at least MinDepth in front of
// the eye (larger x), so these generators derive eyes from the terrain's
// bounding box: always on the -x side, at altitudes relative to the peak
// height. They supply the two workloads the multi-viewpoint literature
// revolves around — a flyover path toward the terrain and a grid of
// stationary observers — in a reproducible, parameter-only form.

// bounds returns the axis-aligned bounding box of the terrain's vertices.
func bounds(t *terrain.Terrain) (lo, hi geom.Pt3) {
	lo, hi = t.Verts[0], t.Verts[0]
	for _, v := range t.Verts[1:] {
		if v.X < lo.X {
			lo.X = v.X
		}
		if v.X > hi.X {
			hi.X = v.X
		}
		if v.Y < lo.Y {
			lo.Y = v.Y
		}
		if v.Y > hi.Y {
			hi.Y = v.Y
		}
		if v.Z < lo.Z {
			lo.Z = v.Z
		}
		if v.Z > hi.Z {
			hi.Z = v.Z
		}
	}
	return lo, hi
}

// FlyoverParams configures FlyoverPath.
type FlyoverParams struct {
	// Frames is the number of eye points (>= 1).
	Frames int
	// StartStandoff and EndStandoff are the distances of the first and last
	// eye in front of the terrain's near face, in units of the terrain's
	// x-extent. Defaults: 1.0 and 0.15.
	StartStandoff, EndStandoff float64
	// StartAltitude and EndAltitude are heights above the terrain's peak,
	// in units of the terrain's z-extent (or 1 if the terrain is flat).
	// Defaults: 1.0 and 0.4.
	StartAltitude, EndAltitude float64
}

// FlyoverPath returns a camera path approaching the terrain along -x at
// decreasing altitude — the classic flyover — centered on the terrain's
// y-midline. All eyes lie strictly in front of every vertex.
func FlyoverPath(t *terrain.Terrain, p FlyoverParams) ([]geom.Pt3, error) {
	if t == nil || len(t.Verts) == 0 {
		return nil, fmt.Errorf("workload: flyover of empty terrain")
	}
	if p.Frames < 1 {
		return nil, fmt.Errorf("workload: flyover needs >= 1 frame, got %d", p.Frames)
	}
	if p.StartStandoff == 0 {
		p.StartStandoff = 1.0
	}
	if p.EndStandoff == 0 {
		p.EndStandoff = 0.15
	}
	if p.StartAltitude == 0 {
		p.StartAltitude = 1.0
	}
	if p.EndAltitude == 0 {
		p.EndAltitude = 0.4
	}
	lo, hi := bounds(t)
	xExt := hi.X - lo.X
	if xExt <= 0 {
		xExt = 1
	}
	zExt := hi.Z - lo.Z
	if zExt <= 0 {
		zExt = 1
	}
	yMid := (lo.Y + hi.Y) / 2
	from := geom.Pt3{X: lo.X - p.StartStandoff*xExt, Y: yMid, Z: hi.Z + p.StartAltitude*zExt}
	to := geom.Pt3{X: lo.X - p.EndStandoff*xExt, Y: yMid, Z: hi.Z + p.EndAltitude*zExt}
	return geom.LinePts(from, to, p.Frames), nil
}

// ObserverGridParams configures ObserverGrid.
type ObserverGridParams struct {
	// Rows and Cols are the grid dimensions (rows vary altitude, cols vary
	// the y position); both >= 1.
	Rows, Cols int
	// Standoff is the distance of the observer plane in front of the
	// terrain's near face, in units of the terrain's x-extent. Default 0.5.
	Standoff float64
	// MinAltitude and MaxAltitude are heights above the terrain's peak, in
	// units of the terrain's z-extent (or 1 if flat). Defaults 0.2 and 1.5.
	MinAltitude, MaxAltitude float64
}

// ObserverGrid returns a rows x cols grid of stationary observers on a
// vertical plane in front of the terrain — the many-viewshed workload:
// same terrain, many simultaneous eye points.
func ObserverGrid(t *terrain.Terrain, p ObserverGridParams) ([]geom.Pt3, error) {
	if t == nil || len(t.Verts) == 0 {
		return nil, fmt.Errorf("workload: observer grid over empty terrain")
	}
	if p.Rows < 1 || p.Cols < 1 {
		return nil, fmt.Errorf("workload: observer grid needs >= 1x1, got %dx%d", p.Rows, p.Cols)
	}
	if p.Standoff == 0 {
		p.Standoff = 0.5
	}
	if p.MinAltitude == 0 {
		p.MinAltitude = 0.2
	}
	if p.MaxAltitude == 0 {
		p.MaxAltitude = 1.5
	}
	lo, hi := bounds(t)
	xExt := hi.X - lo.X
	if xExt <= 0 {
		xExt = 1
	}
	zExt := hi.Z - lo.Z
	if zExt <= 0 {
		zExt = 1
	}
	x := lo.X - p.Standoff*xExt
	out := make([]geom.Pt3, 0, p.Rows*p.Cols)
	for r := 0; r < p.Rows; r++ {
		tz := 0.0
		if p.Rows > 1 {
			tz = float64(r) / float64(p.Rows-1)
		}
		z := hi.Z + (p.MinAltitude+(p.MaxAltitude-p.MinAltitude)*tz)*zExt
		for c := 0; c < p.Cols; c++ {
			ty := 0.5
			if p.Cols > 1 {
				ty = float64(c) / float64(p.Cols-1)
			}
			out = append(out, geom.Pt3{X: x, Y: lo.Y + (hi.Y-lo.Y)*ty, Z: z})
		}
	}
	return out, nil
}
