package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a terrain spec string — the comma-separated key=value
// syntax shared by hsrserved's -terrain flag, hsrload's workload
// definitions and the fleet smoke tests — into the spec's id and
// generator parameters. Keeping one parser here guarantees a load
// generator pointed at a replica regenerates exactly the terrain the
// replica serves, so eye points derived from the local copy aim at the
// same surface.
//
// Keys: id (required), kind, rows, cols, seed, amplitude, ridge (ridge
// height), slope, shear.
func ParseSpec(spec string) (id string, p Params, err error) {
	p = Params{Kind: Fractal, Rows: 48, Cols: 48}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return "", p, fmt.Errorf("malformed entry %q (want key=value)", kv)
		}
		switch k {
		case "id":
			id = v
		case "kind":
			p.Kind = Kind(v)
		case "rows":
			p.Rows, err = strconv.Atoi(v)
		case "cols":
			p.Cols, err = strconv.Atoi(v)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "amplitude":
			p.Amplitude, err = strconv.ParseFloat(v, 64)
		case "ridge":
			p.RidgeHeight, err = strconv.ParseFloat(v, 64)
		case "slope":
			p.Slope, err = strconv.ParseFloat(v, 64)
		case "shear":
			p.Shear, err = strconv.ParseFloat(v, 64)
		default:
			return "", p, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return "", p, fmt.Errorf("bad value for %q: %v", k, err)
		}
	}
	if id == "" {
		return "", p, fmt.Errorf("spec needs an id=...")
	}
	return id, p, nil
}
