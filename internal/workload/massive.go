package workload

import (
	"math"
	"math/rand"

	"terrainhsr/internal/terrain"
)

// The massive-terrain scenario: the workload the tiled solver exists for.
// Real large-scale DEMs are dominated by long mountain ranges that occlude
// the basins behind them, so a faithful synthetic stand-in needs structure
// at the terrain scale, not just per-cell noise: fractal relief plus a few
// sinuous ranges running across the viewing direction. The ranges make
// whole regions of the far terrain invisible, which is exactly what the
// tiled engine's silhouette culling exploits (and what the hsrbench T1
// experiment measures).

// massiveHeight builds the height function for Kind Massive: diamond-square
// relief (amplitude Params.Amplitude) with meandering mountain ranges
// superimposed, each a Gaussian crest of height about Params.RidgeHeight
// whose crest line wanders across the columns.
func massiveHeight(p Params, r *rand.Rand) terrain.HeightFn {
	base := diamondSquare(maxInt(p.Rows, p.Cols), p.Amplitude, r)
	type crest struct {
		row, amp, sigma      float64
		meander, freq, phase float64
	}
	ranges := maxInt(2, maxInt(p.Rows, p.Cols)/96)
	crests := make([]crest, ranges)
	for k := range crests {
		crests[k] = crest{
			// Spread the ranges over the depth axis, jittered within a slot.
			row:     (float64(k) + 0.2 + 0.6*r.Float64()) / float64(ranges) * float64(p.Rows),
			amp:     p.RidgeHeight * (0.7 + 0.6*r.Float64()),
			sigma:   2 + 3*r.Float64(),
			meander: float64(p.Rows) * (0.02 + 0.05*r.Float64()),
			freq:    2 * math.Pi * (1 + 2*r.Float64()) / float64(p.Cols+1),
			phase:   2 * math.Pi * r.Float64(),
		}
	}
	return func(i, j int) float64 {
		z := base[i][j]
		for _, c := range crests {
			d := float64(i) - (c.row + c.meander*math.Sin(c.freq*float64(j)+c.phase))
			z += c.amp * math.Exp(-d*d/(2*c.sigma*c.sigma))
		}
		return z
	}
}

// MassiveTerrain builds the default massive-terrain scenario at the given
// size: Kind Massive with the standard relief and range heights. It is the
// input of the tiled-vs-monolithic experiment (hsrbench T1); sizes of
// 512x512 and up are the intended regime, but any size works (the range
// count scales with the grid).
func MassiveTerrain(rows, cols int, seed int64) (*terrain.Terrain, error) {
	return Generate(Params{Kind: Massive, Rows: rows, Cols: cols, Seed: seed})
}
