// Package workload generates synthetic terrains whose visible-output size k,
// input size n, and image-plane intersection count I can be controlled
// independently. The paper's bounds are stated in terms of n and k (and
// implicitly contrasted with algorithms whose work grows with I), so the
// experiment harness needs terrain families that sweep k/n from near 0
// (a front ridge occluding everything) to near 1 (a surface tilted toward
// the sky, fully visible) while I varies freely.
//
// This package substitutes for the geographic datasets the paper alludes to
// ("most geographical features can be represented in this manner") — see
// DESIGN.md section 2.
package workload
