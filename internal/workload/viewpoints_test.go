package workload

import (
	"testing"

	"terrainhsr/internal/geom"
)

func TestFlyoverPathInFrontOfTerrain(t *testing.T) {
	tr, err := Generate(Params{Kind: Fractal, Rows: 12, Cols: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eyes, err := FlyoverPath(tr, FlyoverParams{Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(eyes) != 8 {
		t.Fatalf("frames: %d", len(eyes))
	}
	lo, hi := bounds(tr)
	for i, e := range eyes {
		if e.X >= lo.X {
			t.Fatalf("eye %d at x=%v not in front of terrain (near face %v)", i, e.X, lo.X)
		}
		if e.Z <= hi.Z {
			t.Fatalf("eye %d at z=%v not above the peak %v", i, e.Z, hi.Z)
		}
	}
	// The path approaches: x increases, z decreases.
	if !(eyes[len(eyes)-1].X > eyes[0].X && eyes[len(eyes)-1].Z < eyes[0].Z) {
		t.Fatalf("path does not approach: first %v last %v", eyes[0], eyes[len(eyes)-1])
	}
	// Every frame must be solvable as a perspective view.
	pt := geom.PerspectiveTransform{Eye: eyes[len(eyes)-1], MinDepth: 1e-3}
	if _, err := tr.Transform(pt.Apply); err != nil {
		t.Fatalf("closest eye not solvable: %v", err)
	}
}

func TestObserverGrid(t *testing.T) {
	tr, err := Generate(Params{Kind: Sinusoid, Rows: 10, Cols: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eyes, err := ObserverGrid(tr, ObserverGridParams{Rows: 3, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(eyes) != 12 {
		t.Fatalf("count: %d", len(eyes))
	}
	lo, hi := bounds(tr)
	x := eyes[0].X
	for i, e := range eyes {
		if e.X != x {
			t.Fatalf("observer %d off the grid plane: x=%v vs %v", i, e.X, x)
		}
		if e.X >= lo.X || e.Z <= hi.Z {
			t.Fatalf("observer %d not in front and above: %v", i, e)
		}
	}
	// Altitudes vary across rows, y across columns.
	if eyes[0].Z == eyes[8].Z {
		t.Fatal("rows do not vary altitude")
	}
	if eyes[0].Y == eyes[3].Y {
		t.Fatal("columns do not vary y")
	}
}

func TestViewpointErrors(t *testing.T) {
	tr, _ := Generate(Params{Kind: Fractal, Rows: 4, Cols: 4, Seed: 1})
	if _, err := FlyoverPath(nil, FlyoverParams{Frames: 2}); err == nil {
		t.Fatal("nil terrain accepted")
	}
	if _, err := FlyoverPath(tr, FlyoverParams{}); err == nil {
		t.Fatal("zero frames accepted")
	}
	if _, err := ObserverGrid(nil, ObserverGridParams{Rows: 1, Cols: 1}); err == nil {
		t.Fatal("nil terrain accepted")
	}
	if _, err := ObserverGrid(tr, ObserverGridParams{Rows: 0, Cols: 2}); err == nil {
		t.Fatal("empty grid accepted")
	}
}
