package workload

import (
	"fmt"
	"math"
	"math/rand"

	"terrainhsr/internal/geom"
	"terrainhsr/internal/terrain"
)

// Kind selects a terrain family.
type Kind string

const (
	// Fractal is diamond-square fractional Brownian relief: the "natural
	// terrain" workload. Moderate k/n, irregular profiles.
	Fractal Kind = "fractal"
	// Sinusoid is a smooth sum of sinusoids: few crossings, well conditioned.
	Sinusoid Kind = "sinusoid"
	// Ridge places a tall wall near the viewer occluding a controllable
	// fraction of the terrain behind it: k << n while I stays large.
	Ridge Kind = "ridge"
	// TiltedUp rises away from the viewer: essentially everything is
	// visible, k = Theta(n).
	TiltedUp Kind = "tilted-up"
	// TiltedDown falls away from the viewer: the front rows hide the rest,
	// k is near the minimum.
	TiltedDown Kind = "tilted-down"
	// Rough is independent random heights: maximizes crossings I relative
	// to n; stress test for robustness.
	Rough Kind = "rough"
	// Steps is a staircase rising away from the viewer with occasional
	// drops; piecewise-flat profiles exercise tie handling.
	Steps Kind = "steps"
	// Massive is the production-scale scenario: fractal relief with long
	// meandering mountain ranges superimposed (see massive.go). Ranges
	// occlude the basins behind them, so k/n falls as the terrain grows —
	// the regime the tiled solver and its silhouette culling target.
	Massive Kind = "massive"
)

// Kinds lists all generator families.
var Kinds = []Kind{Fractal, Sinusoid, Ridge, TiltedUp, TiltedDown, Rough, Steps, Massive}

// Params configures a generator.
type Params struct {
	Kind Kind
	// Rows and Cols are grid cell counts (n_edges ~ 3*Rows*Cols).
	Rows, Cols int
	Seed       int64
	// Amplitude scales relief height relative to the unit grid spacing.
	Amplitude float64
	// RidgeHeight (Ridge only) is the wall height; taller walls occlude
	// more, driving k down.
	RidgeHeight float64
	// RidgeRow (Ridge only) is the row index of the wall; defaults to 1.
	RidgeRow int
	// Slope (TiltedUp/TiltedDown only) is the tilt per row.
	Slope float64
	// Shear tilts the plan grid by adding Shear*x to every y coordinate.
	// The paper implicitly assumes general position: no terrain edge
	// parallel to the viewing direction (such an edge projects to a single
	// image column, where visibility degenerates to a limit computation).
	// A small shear removes the degeneracy without changing the character
	// of the terrain. Zero selects the default 0.07; negative disables.
	Shear float64
}

func (p Params) withDefaults() Params {
	if p.Amplitude == 0 {
		p.Amplitude = 3
	}
	if p.RidgeHeight == 0 {
		p.RidgeHeight = 10
	}
	if p.RidgeRow == 0 {
		p.RidgeRow = 1
	}
	if p.Slope == 0 {
		p.Slope = 0.5
	}
	if p.Shear == 0 {
		p.Shear = 0.07
	}
	return p
}

// Generate builds the terrain for the given parameters.
func Generate(p Params) (*terrain.Terrain, error) {
	p = p.withDefaults()
	if p.Rows < 1 || p.Cols < 1 {
		return nil, fmt.Errorf("workload: need at least one cell, got %dx%d", p.Rows, p.Cols)
	}
	var h terrain.HeightFn
	r := rand.New(rand.NewSource(p.Seed))
	switch p.Kind {
	case Fractal:
		f := diamondSquare(maxInt(p.Rows, p.Cols), p.Amplitude, r)
		h = func(i, j int) float64 { return f[i][j] }
	case Sinusoid:
		fx := 0.5 + r.Float64()
		fy := 0.5 + r.Float64()
		ph := r.Float64() * math.Pi
		h = func(i, j int) float64 {
			return p.Amplitude * (math.Sin(fx*float64(i)+ph) * math.Cos(fy*float64(j)))
		}
	case Ridge:
		base := diamondSquare(maxInt(p.Rows, p.Cols), p.Amplitude, r)
		h = func(i, j int) float64 {
			if i == p.RidgeRow {
				return p.RidgeHeight
			}
			return base[i][j]
		}
	case TiltedUp:
		jit := jitterTable(p.Rows+1, p.Cols+1, 0.05*p.Amplitude, r)
		h = func(i, j int) float64 { return p.Slope*float64(i) + jit[i][j] }
	case TiltedDown:
		jit := jitterTable(p.Rows+1, p.Cols+1, 0.05*p.Amplitude, r)
		h = func(i, j int) float64 { return -p.Slope*float64(i) + jit[i][j] }
	case Rough:
		jit := jitterTable(p.Rows+1, p.Cols+1, p.Amplitude, r)
		h = func(i, j int) float64 { return jit[i][j] }
	case Steps:
		drops := make([]bool, p.Rows+1)
		for i := range drops {
			drops[i] = r.Float64() < 0.25
		}
		h = func(i, j int) float64 {
			z := 0.0
			for k := 1; k <= i; k++ {
				if drops[k] {
					z -= 0.7 * p.Slope
				} else {
					z += p.Slope
				}
			}
			return z
		}
	case Massive:
		h = massiveHeight(p, r)
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", p.Kind)
	}
	t, err := terrain.Grid{Rows: p.Rows, Cols: p.Cols, Dx: 1, Dy: 1, H: h}.Build()
	if err != nil {
		return nil, err
	}
	if p.Shear > 0 {
		shear := p.Shear
		t, err = t.Transform(func(q geom.Pt3) (geom.Pt3, error) {
			q.Y += shear * q.X
			return q, nil
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func jitterTable(nr, nc int, amp float64, r *rand.Rand) [][]float64 {
	t := make([][]float64, nr)
	for i := range t {
		t[i] = make([]float64, nc)
		for j := range t[i] {
			t[i][j] = (r.Float64()*2 - 1) * amp
		}
	}
	return t
}

// diamondSquare generates fractional Brownian relief on a grid covering at
// least (side+1)x(side+1) samples.
func diamondSquare(side int, amp float64, r *rand.Rand) [][]float64 {
	size := 1
	for size < side {
		size *= 2
	}
	n := size + 1
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	g[0][0] = r.Float64() * amp
	g[0][size] = r.Float64() * amp
	g[size][0] = r.Float64() * amp
	g[size][size] = r.Float64() * amp
	scale := amp
	for step := size; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for i := half; i < n; i += step {
			for j := half; j < n; j += step {
				avg := (g[i-half][j-half] + g[i-half][j+half] + g[i+half][j-half] + g[i+half][j+half]) / 4
				g[i][j] = avg + (r.Float64()*2-1)*scale
			}
		}
		// Square step.
		for i := 0; i < n; i += half {
			start := half
			if (i/half)%2 == 1 {
				start = 0
			}
			for j := start; j < n; j += step {
				sum, cnt := 0.0, 0
				if i >= half {
					sum += g[i-half][j]
					cnt++
				}
				if i+half < n {
					sum += g[i+half][j]
					cnt++
				}
				if j >= half {
					sum += g[i][j-half]
					cnt++
				}
				if j+half < n {
					sum += g[i][j+half]
					cnt++
				}
				g[i][j] = sum/float64(cnt) + (r.Float64()*2-1)*scale
			}
		}
		scale *= 0.55
	}
	return g
}

// CountImageCrossings counts I: the pairwise proper crossings of the
// projected edges in the image plane, by brute force. This is the quantity
// intersection-sensitive algorithms pay for; quadratic in n, so callers
// should restrict it to moderate sizes.
func CountImageCrossings(t *terrain.Terrain) int {
	segs := make([]geom.Seg2, t.NumEdges())
	for e := range segs {
		segs[e] = t.EdgeImageSeg(e)
	}
	count := 0
	for i := 0; i < len(segs); i++ {
		if segs[i].IsVerticalImage() {
			continue
		}
		for j := i + 1; j < len(segs); j++ {
			if segs[j].IsVerticalImage() {
				continue
			}
			if _, ok := geom.SegCrossOnOverlap(segs[i], segs[j]); ok {
				count++
			}
		}
	}
	return count
}
