package workload

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantID  string
		want    Params
		wantErr string
	}{
		{
			name:   "defaults",
			spec:   "id=alps",
			wantID: "alps",
			want:   Params{Kind: Fractal, Rows: 48, Cols: 48},
		},
		{
			name:   "full",
			spec:   "id=big,kind=ridge,rows=96,cols=64,seed=9,amplitude=2.5,ridge=4,slope=0.5,shear=0.25",
			wantID: "big",
			want:   Params{Kind: Ridge, Rows: 96, Cols: 64, Seed: 9, Amplitude: 2.5, RidgeHeight: 4, Slope: 0.5, Shear: 0.25},
		},
		{
			name:   "spaces tolerated",
			spec:   "id=a, rows=10, cols=12",
			wantID: "a",
			want:   Params{Kind: Fractal, Rows: 10, Cols: 12},
		},
		{name: "missing id", spec: "rows=10", wantErr: "needs an id"},
		{name: "unknown key", spec: "id=a,color=blue", wantErr: "unknown key"},
		{name: "bad value", spec: "id=a,rows=ten", wantErr: `bad value for "rows"`},
		{name: "malformed entry", spec: "id=a,rows", wantErr: "malformed entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, p, err := ParseSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseSpec(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
			}
			if id != tc.wantID {
				t.Errorf("id = %q, want %q", id, tc.wantID)
			}
			if p != tc.want {
				t.Errorf("params = %+v, want %+v", p, tc.want)
			}
		})
	}
}

// TestParseSpecRoundTrip pins the contract hsrload depends on: a spec
// parsed here and generated via Generate matches the terrain hsrserved
// builds from the same spec (both go through the same parser, so this is
// really a regeneration-determinism check).
func TestParseSpecRoundTrip(t *testing.T) {
	spec := "id=rt,kind=ridge,rows=12,cols=12,seed=5"
	_, p, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Verts) != len(b.Verts) {
		t.Fatalf("regenerated terrain differs in size: %d vs %d", len(a.Verts), len(b.Verts))
	}
	for i := range a.Verts {
		if a.Verts[i] != b.Verts[i] {
			t.Fatalf("vertex %d differs between regenerations", i)
		}
	}
}
