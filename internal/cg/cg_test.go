package cg

import (
	"math"
	"math/rand"
	"testing"

	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/persist"
	"terrainhsr/internal/profiletree"
)

func randProfile(r *rand.Rand, n int) envelope.Profile {
	segs := make([]geom.Seg2, n)
	for i := range segs {
		x1 := r.Float64() * 80
		segs[i] = geom.S2(x1, r.Float64()*40, x1+1+r.Float64()*20, r.Float64()*40)
	}
	return envelope.BuildUpperEnvelope(segs, 0)
}

// relationsAgree checks that the queried relations match ClipAbove's spans.
func relationsAgree(t *testing.T, label string, rels []Relation, s geom.Seg2, p envelope.Profile) {
	t.Helper()
	want := envelope.ClipAbove(s, p)
	got := VisibleSpans(rels, s)
	if len(want.Spans) != len(got) {
		t.Fatalf("%s: %d vs %d visible spans\nwant %+v\ngot %+v", label, len(want.Spans), len(got), want.Spans, got)
	}
	for i := range got {
		if math.Abs(want.Spans[i].X1-got[i].X1) > 1e-6 || math.Abs(want.Spans[i].X2-got[i].X2) > 1e-6 {
			t.Fatalf("%s: span %d: want %+v got %+v", label, i, want.Spans[i], got[i])
		}
	}
}

func TestQueryMatchesClipAboveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, hulls := range []bool{false, true} {
		o := profiletree.NewOps(persist.NewArena(5), hulls)
		for trial := 0; trial < 60; trial++ {
			p := randProfile(r, 2+trial%20)
			tr := o.FromProfile(p)
			for q := 0; q < 10; q++ {
				x1 := r.Float64() * 100
				s := geom.S2(x1, r.Float64()*60-10, x1+1+r.Float64()*40, r.Float64()*60-10)
				rels, _ := QueryRelations(o, tr, s)
				relationsAgree(t, "random", rels, s, p)
			}
		}
	}
}

func TestQueryEmptyProfile(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(6), false)
	s := geom.S2(0, 1, 5, 2)
	rels, _ := QueryRelations(o, profiletree.Tree{}, s)
	if len(rels) != 1 || !rels[0].Above || rels[0].X1 != 0 || rels[0].X2 != 5 {
		t.Fatalf("empty profile relations: %+v", rels)
	}
}

func TestQueryVerticalSegmentIgnored(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(7), false)
	rels, _ := QueryRelations(o, profiletree.Tree{}, geom.S2(1, 0, 1, 5))
	if rels != nil {
		t.Fatalf("vertical segment should yield nil relations, got %+v", rels)
	}
}

func TestQueryCrossingCount(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(8), false)
	// Profile: single descending piece; segment crosses it once.
	p := envelope.Profile{{X1: 0, Z1: 10, X2: 10, Z2: 0, Edge: 0}}
	tr := o.FromProfile(p)
	s := geom.S2(0, 0, 10, 10)
	rels, st := QueryRelations(o, tr, s)
	if st.Crossings != 1 {
		t.Fatalf("crossings %d want 1 (rels %+v)", st.Crossings, rels)
	}
}

func TestQueryGapBoundaryEvents(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(9), false)
	p := envelope.Profile{
		{X1: 0, Z1: 10, X2: 3, Z2: 10, Edge: 0},
		{X1: 6, Z1: 10, X2: 9, Z2: 10, Edge: 1},
	}
	tr := o.FromProfile(p)
	s := geom.S2(1, 5, 8, 5) // below pieces, visible over the gap
	rels, st := QueryRelations(o, tr, s)
	spans := VisibleSpans(rels, s)
	if len(spans) != 1 || math.Abs(spans[0].X1-3) > 1e-9 || math.Abs(spans[0].X2-6) > 1e-9 {
		t.Fatalf("gap visibility wrong: %+v", spans)
	}
	if st.Crossings != 2 {
		t.Fatalf("expected 2 T-vertex events, got %d", st.Crossings)
	}
}

func TestPruningActuallyPrunes(t *testing.T) {
	// A segment far above a large profile must be resolved near the root.
	r := rand.New(rand.NewSource(10))
	p := randProfile(r, 300)
	for _, hulls := range []bool{false, true} {
		o := profiletree.NewOps(persist.NewArena(11), hulls)
		tr := o.FromProfile(p)
		lo, hi, _ := p.XRange()
		s := geom.S2(lo, 1e5, hi, 1e5)
		_, st := QueryRelations(o, tr, s)
		if st.Steps > 8 {
			t.Fatalf("hulls=%v: query above everything visited %d nodes", hulls, st.Steps)
		}
		// Far below a gap-free region: also cheap with hulls.
		s2 := geom.S2(lo, -1e5, hi, -1e5)
		_, st2 := QueryRelations(o, tr, s2)
		if st2.Steps > int64(8+tr.Size()) {
			t.Fatalf("hulls=%v: below-query visited %d nodes", hulls, st2.Steps)
		}
	}
}

func TestHullPruningBeatsSummaryOnSlopedProfile(t *testing.T) {
	// A long staircase profile and a segment running just above it but
	// parallel: z-summaries cannot prune (z-ranges overlap), hull tangent
	// tests can.
	var p envelope.Profile
	for i := 0; i < 256; i++ {
		x := float64(i)
		p = append(p, envelope.Piece{X1: x, Z1: x, X2: x + 1, Z2: x + 1, Edge: int32(i)})
	}
	oSum := profiletree.NewOps(persist.NewArena(12), false)
	oHull := profiletree.NewOps(persist.NewArena(13), true)
	tSum := oSum.FromProfile(p)
	tHull := oHull.FromProfile(p)
	s := geom.S2(0, 1, 256, 257) // parallel, one unit above
	_, stSum := QueryRelations(oSum, tSum, s)
	_, stHull := QueryRelations(oHull, tHull, s)
	if stHull.Steps > 8 {
		t.Fatalf("hull pruning should resolve at the root, visited %d", stHull.Steps)
	}
	if stSum.Steps <= stHull.Steps {
		t.Fatalf("expected summary mode to visit more nodes (%d vs %d)", stSum.Steps, stHull.Steps)
	}
	// And both give the same (fully visible) answer.
	relsS, _ := QueryRelations(oSum, tSum, s)
	relsH, _ := QueryRelations(oHull, tHull, s)
	if len(relsS) != 1 || !relsS[0].Above || len(relsH) != 1 || !relsH[0].Above {
		t.Fatalf("answers differ: %+v vs %+v", relsS, relsH)
	}
}

func TestVisibleRunsAttribution(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(14), false)
	p := envelope.Profile{{X1: 0, Z1: 5, X2: 4, Z2: 5, Edge: 0}}
	tr := o.FromProfile(p)
	s := geom.S2(2, 0, 8, 12)
	rels, _ := QueryRelations(o, tr, s)
	runs := VisibleRuns(rels, s, 42)
	if len(runs) != 1 {
		t.Fatalf("runs: %+v", runs)
	}
	for _, pc := range runs[0].Pieces {
		if pc.Edge != 42 {
			t.Fatalf("attribution lost: %+v", pc)
		}
	}
}

func TestQueryStepsLogarithmicOnPrunable(t *testing.T) {
	// Query cost for a short segment against a big profile must scale
	// logarithmically, not linearly.
	r := rand.New(rand.NewSource(15))
	big := randProfile(r, 2000)
	o := profiletree.NewOps(persist.NewArena(16), false)
	tr := o.FromProfile(big)
	lo, hi, _ := big.XRange()
	var totalSteps int64
	const queries = 50
	for q := 0; q < queries; q++ {
		x := lo + r.Float64()*(hi-lo)*0.95
		s := geom.S2(x, r.Float64()*40, x+0.5, r.Float64()*40)
		_, st := QueryRelations(o, tr, s)
		totalSteps += st.Steps
	}
	avg := float64(totalSteps) / queries
	if avg > 64 {
		t.Fatalf("average short-segment query visited %.1f nodes on a %d-piece profile", avg, tr.Size())
	}
}

func TestFirstCrossing(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(20), false)
	p := envelope.Profile{{X1: 0, Z1: 10, X2: 10, Z2: 0, Edge: 0}}
	tr := o.FromProfile(p)
	s := geom.S2(0, 0, 10, 10)
	c, ok := FirstCrossing(o, tr, s, 0)
	if !ok {
		t.Fatal("crossing not found")
	}
	if math.Abs(c.X-5) > 1e-9 || !c.Entering {
		t.Fatalf("first crossing wrong: %+v", c)
	}
	// From beyond the crossing: none left.
	if _, ok := FirstCrossing(o, tr, s, 6); ok {
		t.Fatal("phantom crossing after fromX")
	}
	// Segment entirely above: no crossing at all.
	if _, ok := FirstCrossing(o, tr, geom.S2(0, 50, 10, 60), 0); ok {
		t.Fatal("crossing reported for clear segment")
	}
}

func TestAllCrossingsAlternate(t *testing.T) {
	o := profiletree.NewOps(persist.NewArena(21), false)
	// Two teeth; a horizontal segment crosses in and out twice.
	p := envelope.Profile{
		{X1: 0, Z1: 0, X2: 2, Z2: 8, Edge: 0},
		{X1: 2, Z1: 8, X2: 4, Z2: 0, Edge: 1},
		{X1: 4, Z1: 0, X2: 6, Z2: 8, Edge: 2},
		{X1: 6, Z1: 8, X2: 8, Z2: 0, Edge: 3},
	}
	tr := o.FromProfile(p)
	s := geom.S2(0, 4, 8, 4)
	cs := AllCrossings(o, tr, s)
	if len(cs) != 4 {
		t.Fatalf("expected 4 crossings, got %d: %+v", len(cs), cs)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].X <= cs[i-1].X {
			t.Fatal("crossings not ordered")
		}
		if cs[i].Entering == cs[i-1].Entering {
			t.Fatal("crossings do not alternate")
		}
	}
	// First must be a dive (segment starts visible at z=4 above z=0 start).
	if cs[0].Entering {
		t.Fatalf("first crossing should leave visibility: %+v", cs[0])
	}
}
