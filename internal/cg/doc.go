// Package cg implements the intersection-detection queries of the paper's
// Chazelle-Guibas-based ACG structure (Lemmas 3.2 and 3.6): given a
// persistent profile tree and a query segment, report how the segment
// relates to the profile — the maximal intervals where it is strictly above
// (visible) or not — discovering only O(polylog) structure per reported
// transition.
//
// The descent prunes subtrees whose relation to the segment is provably
// constant. With hulls enabled the test is the paper's tangent test: the
// segment (slope m) clears a sub-chain iff the chain's extreme values of
// (z - m*x) stay on one side of the segment's intercept; the extremes come
// from O(log) tangent searches on the subtree's convex chains. Without
// hulls the test falls back to z-interval summaries (conservative but
// O(1) per node).
package cg
