package cg

import (
	"terrainhsr/internal/envelope"
	"terrainhsr/internal/geom"
	"terrainhsr/internal/profiletree"
)

// Relation is one maximal x-interval with a constant visibility relation.
type Relation struct {
	X1, X2 float64
	// Above is true where the segment is strictly above the profile or the
	// profile is absent (a gap).
	Above bool
}

// Stats counts the charged operations of a query.
type Stats struct {
	// Steps is the number of tree nodes visited.
	Steps int64
	// Pruned is the number of subtrees resolved wholesale.
	Pruned int64
	// HullQueries counts tangent searches performed.
	HullQueries int64
	// Crossings is the number of proper segment/profile crossings found.
	Crossings int64
	// MaxDepth tracks the deepest recursion (the query's critical path).
	MaxDepth int
}

// QueryRelations computes the ordered relations of segment s against the
// profile tree over s's span. The segment must not be vertical in the
// image; callers handle vertical segments via profiletree.Eval.
func QueryRelations(o *profiletree.Ops, t profiletree.Tree, s geom.Seg2) ([]Relation, Stats) {
	s = s.Canon()
	var st Stats
	if s.IsVerticalImage() {
		return nil, st
	}
	q := &query{o: o, s: s, sp: envelope.Piece{X1: s.A.X, Z1: s.A.Z, X2: s.B.X, Z2: s.B.Z}}
	q.visit(t.Root, 1)
	st = q.st
	rels := stitch(q.rels, s.A.X, s.B.X)
	// Every flip between consecutive relations is one vertex event of the
	// image: a proper crossing or a T-vertex at a jump/gap boundary.
	for i := 1; i < len(rels); i++ {
		if rels[i].Above != rels[i-1].Above {
			st.Crossings++
		}
	}
	return rels, st
}

type query struct {
	o            *profiletree.Ops
	s            geom.Seg2
	sp           envelope.Piece
	rels         []Relation
	st           Stats
	properSplits int64
}

// visit performs the pruned in-order traversal.
func (q *query) visit(n *profiletree.Node, depth int) {
	if n == nil {
		return
	}
	a, b := n.Agg.X1, n.Agg.X2
	qlo := geom.Max(a, q.s.A.X)
	qhi := geom.Min(b, q.s.B.X)
	if qhi <= qlo+geom.Eps {
		return
	}
	q.st.Steps++
	if depth > q.st.MaxDepth {
		q.st.MaxDepth = depth
	}
	if above, below, ok := q.resolve(n, qlo, qhi); ok {
		q.st.Pruned++
		_ = below
		q.rels = append(q.rels, Relation{X1: qlo, X2: qhi, Above: above})
		return
	}
	q.visit(n.L, depth+1)
	q.ownPiece(n.Val)
	q.visit(n.R, depth+1)
}

// resolve attempts to classify the whole subtree against the segment.
// Returns (above, below, decidable).
func (q *query) resolve(n *profiletree.Node, qlo, qhi float64) (bool, bool, bool) {
	m := q.s.Slope()
	c0 := q.s.A.Z - m*q.s.A.X
	if q.o.WithHulls && n.Agg.Upper.T != nil {
		q.st.HullQueries += 2
		maxH := n.Agg.Upper.ExtremeValue(m) - c0 // max of P - s over vertices
		minH := n.Agg.Lower.ExtremeValue(m) - c0
		if maxH < -geom.Eps {
			// Every profile vertex strictly below the segment's line: the
			// segment clears the subtree (gaps only help).
			return true, false, true
		}
		if minH >= -geom.Eps && !n.Agg.HasGap && qlo >= n.Agg.X1-geom.Eps && qhi <= n.Agg.X2+geom.Eps {
			// The profile is everywhere at or above the segment and covers
			// the whole query window: occluded throughout.
			return false, true, true
		}
		return false, false, false
	}
	// Summary-only mode: z-interval tests.
	sLo, sHi := q.sp.ZAt(qlo), q.sp.ZAt(qhi)
	sMin, sMax := geom.Min(sLo, sHi), geom.Max(sLo, sHi)
	if sMin > n.Agg.ZMax+geom.Eps {
		return true, false, true
	}
	if sMax < n.Agg.ZMin-geom.Eps && !n.Agg.HasGap && qlo >= n.Agg.X1-geom.Eps && qhi <= n.Agg.X2+geom.Eps {
		return false, true, true
	}
	return false, false, false
}

// ownPiece classifies the segment against one profile piece directly,
// splitting at a proper crossing.
func (q *query) ownPiece(pc envelope.Piece) {
	lo := geom.Max(pc.X1, q.s.A.X)
	hi := geom.Min(pc.X2, q.s.B.X)
	if hi <= lo+geom.Eps {
		return
	}
	q.st.Steps++
	da := q.sp.ZAt(lo) - pc.ZAt(lo)
	db := q.sp.ZAt(hi) - pc.ZAt(hi)
	above, aboveEnd := da > geom.Eps, db > geom.Eps
	if above == aboveEnd {
		q.rels = append(q.rels, Relation{X1: lo, X2: hi, Above: above})
		return
	}
	xs, ok := geom.LineIntersectX(q.sp.Seg(), pc.Seg())
	if !ok {
		xs = (lo + hi) / 2
	}
	xs = geom.Min(geom.Max(xs, lo), hi)
	q.properSplits++
	q.rels = append(q.rels, Relation{X1: lo, X2: xs, Above: above}, Relation{X1: xs, X2: hi, Above: aboveEnd})
}

// stitch fills coverage holes (profile gaps, where the segment is visible),
// clips to [lo, hi] and merges adjacent relations with equal flags.
func stitch(rels []Relation, lo, hi float64) []Relation {
	out := make([]Relation, 0, len(rels)+2)
	x := lo
	push := func(r Relation) {
		if r.X2-r.X1 <= geom.Eps {
			return
		}
		if n := len(out); n > 0 && out[n-1].Above == r.Above && r.X1 <= out[n-1].X2+geom.Eps {
			out[n-1].X2 = r.X2
			return
		}
		out = append(out, r)
	}
	for _, r := range rels {
		if r.X1 > x+geom.Eps {
			push(Relation{X1: x, X2: r.X1, Above: true}) // gap: visible
		}
		push(r)
		if r.X2 > x {
			x = r.X2
		}
	}
	if hi > x+geom.Eps {
		push(Relation{X1: x, X2: hi, Above: true})
	}
	return out
}

// VisibleSpans converts the relations of segment s into the visible spans
// (the ClipAbove analogue over the persistent tree).
func VisibleSpans(rels []Relation, s geom.Seg2) []envelope.Span {
	s = s.Canon()
	sp := envelope.Piece{X1: s.A.X, Z1: s.A.Z, X2: s.B.X, Z2: s.B.Z}
	var out []envelope.Span
	for _, r := range rels {
		if !r.Above {
			continue
		}
		out = append(out, envelope.Span{X1: r.X1, Z1: sp.ZAt(r.X1), X2: r.X2, Z2: sp.ZAt(r.X2)})
	}
	return out
}

// VisibleRuns converts the relations into splice runs carrying the visible
// fragments of s attributed to edge id.
func VisibleRuns(rels []Relation, s geom.Seg2, edge int32) []profiletree.Run {
	s = s.Canon()
	sp := envelope.Piece{X1: s.A.X, Z1: s.A.Z, X2: s.B.X, Z2: s.B.Z}
	var out []profiletree.Run
	for _, r := range rels {
		if !r.Above {
			continue
		}
		out = append(out, profiletree.Run{
			X1: r.X1, X2: r.X2,
			Pieces: []envelope.Piece{{X1: r.X1, Z1: sp.ZAt(r.X1), X2: r.X2, Z2: sp.ZAt(r.X2), Edge: edge}},
		})
	}
	return out
}
