package cg

import (
	"terrainhsr/internal/geom"
	"terrainhsr/internal/profiletree"
)

// Crossing is one intersection of a query segment with the profile.
type Crossing struct {
	// X is the crossing coordinate.
	X float64
	// Z is the height at the crossing.
	Z float64
	// Entering is true when the segment passes from occluded to visible
	// (left to right); false when it dives below the profile.
	Entering bool
}

// FirstCrossing returns the leftmost crossing of s with the profile at or
// after fromX, in the sense of Lemma 3.2's "detect the first intersection":
// the first point where the segment's visibility state changes. ok is false
// when the segment's relation to the profile never changes after fromX.
func FirstCrossing(o *profiletree.Ops, t profiletree.Tree, s geom.Seg2, fromX float64) (Crossing, bool) {
	rels, _ := QueryRelations(o, t, s)
	for i := 1; i < len(rels); i++ {
		if rels[i].X1 < fromX {
			continue
		}
		if rels[i].Above != rels[i-1].Above {
			sp := s.Canon()
			x := rels[i].X1
			return Crossing{X: x, Z: sp.ZAt(x), Entering: rels[i].Above}, true
		}
	}
	return Crossing{}, false
}

// AllCrossings returns every visibility transition of s against the
// profile, left to right — the full output of Lemma 3.2's recursion
// ("split the segment around the middle diagonal ... and recurse").
func AllCrossings(o *profiletree.Ops, t profiletree.Tree, s geom.Seg2) []Crossing {
	rels, _ := QueryRelations(o, t, s)
	var out []Crossing
	sp := s.Canon()
	for i := 1; i < len(rels); i++ {
		if rels[i].Above != rels[i-1].Above {
			x := rels[i].X1
			out = append(out, Crossing{X: x, Z: sp.ZAt(x), Entering: rels[i].Above})
		}
	}
	return out
}
