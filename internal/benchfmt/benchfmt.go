// Package benchfmt is the machine-readable measurement format shared by
// the benchmark tooling: cmd/hsrbench's experiments and cmd/hsrload's
// traffic reports emit the same Record rows, so the BENCH_*.json
// artifacts CI uploads — and the fleet acceptance gates that read them —
// parse one shape regardless of which tool measured.
package benchfmt

import (
	"encoding/json"
	"os"
	"runtime"
)

// Record is one measurement row. Experiments identify themselves
// (Experiment/Variant), report wall clock and optional memory columns,
// and stash experiment-specific scalars (gains, rates, percentiles) in
// Extra.
type Record struct {
	// Experiment is the experiment id (B1, T1, S1, ST1, F1, ...) and
	// Variant the measured configuration inside it (e.g. "tiled",
	// "cached", "fleet-3").
	Experiment string `json:"experiment"`
	Variant    string `json:"variant"`
	// WallMS is the measured wall clock in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// PeakHeapMB is the sampled peak live heap in MB (0 when not sampled).
	PeakHeapMB float64 `json:"peak_heap_mb,omitempty"`
	// AllocMB is the total allocation volume in MB (0 when not measured).
	AllocMB float64 `json:"alloc_mb,omitempty"`
	// Workers is the worker budget the variant ran under.
	Workers int `json:"workers"`
	// Extra holds experiment-specific scalars (gains, rates, sizes,
	// latency percentiles).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// WithDefaults fills unset fields that have environmental defaults
// (Workers from GOMAXPROCS).
func (r Record) WithDefaults() Record {
	if r.Workers == 0 {
		r.Workers = runtime.GOMAXPROCS(0)
	}
	return r
}

// Write writes the records to path as indented JSON (an empty array, not
// null, when nothing was recorded).
func Write(path string, records []Record) error {
	if records == nil {
		records = []Record{}
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
